"""The multi-process job scheduler: queue, retries, quarantine, merge.

:class:`ProcessScheduler` owns a persistent pool of worker *processes*
(slots ``0..workers-1``), each with a private task queue and a shared
result queue.  ``run(payloads)`` shards the payload list across the pool
and blocks until every job has a final disposition:

* **completed** — the worker returned a result; delivered as a
  :class:`JobOutcome`;
* **quarantined** — the job crashed/timed out more than ``max_retries``
  times, or raised a deterministic Python exception; delivered as a
  :class:`JobFailure` and *never* retried again (no crash loops).

Crash/timeout handling: a worker that dies (or exceeds the per-job
timeout and is killed) takes exactly one in-flight job with it; the
parent requeues that job with exponential backoff
(``backoff * 2**(attempt-1)``) and respawns the slot.  Python exceptions
raised by the payload are treated as deterministic and quarantine
immediately — retrying them would burn a worker generation per attempt
for the same traceback.

The merge is deterministic: outcomes are ordered by submission index
regardless of completion order, so a run with any worker count and any
interleaving produces the same result sequence.

Fault injection: ``REPRO_PARALLEL_CRASH_RATE`` (a probability) makes
workers ``os._exit`` before selected jobs.  The decision is a pure hash
of ``(REPRO_PARALLEL_CRASH_SEED, job index, attempt)`` — deterministic
across processes and runs, and different per attempt, so a retried job
eventually succeeds whenever the rate is below 1.  The parallel-stress
CI job runs the suite under a nonzero rate to prove the retry and
quarantine paths on a real runner.

Observability: every worker owns a private
:class:`~repro.obs.trace.TraceRecorder` and
:class:`~repro.obs.metrics.MetricsRegistry`; after each run the parent
collects per-worker reports (span/event records + a metrics snapshot)
which :mod:`repro.parallel.merge` folds into one Chrome trace with one
lane per worker and one aggregated metrics snapshot.  Parent-side
scheduling decisions surface as events on the caller's
:class:`~repro.obs.hooks.ObservationHooks` and as
:class:`~repro.runtime.counters.SchedulerCounters`.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback as traceback_mod
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from queue import Empty
from typing import Any, Callable, Sequence

from repro.errors import ParallelError
from repro.obs.hooks import NULL_HOOKS, ObservationHooks, TraceHooks
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.runtime.counters import SchedulerCounters

__all__ = [
    "CRASH_RATE_ENV",
    "CRASH_SEED_ENV",
    "SchedulerConfig",
    "WorkerContext",
    "JobOutcome",
    "JobFailure",
    "WorkerReport",
    "ScheduleResult",
    "ProcessScheduler",
]

#: Fault-injection probability (worker crashes before running a job).
CRASH_RATE_ENV = "REPRO_PARALLEL_CRASH_RATE"
#: Seed of the deterministic crash decision hash.
CRASH_SEED_ENV = "REPRO_PARALLEL_CRASH_SEED"

#: Exit code of an injected crash (distinguishable from real faults in logs).
_CRASH_EXIT = 113

#: How long the parent poll loop blocks on the result queue per sweep.
_POLL_SECONDS = 0.02

#: Consecutive worker deaths with no job in flight tolerated per slot
#: before the pool is declared broken (guards against init crash loops).
_MAX_IDLE_DEATHS = 3


def _crash_rate() -> float:
    try:
        return float(os.environ.get(CRASH_RATE_ENV, "0") or "0")
    except ValueError:
        return 0.0


def _should_crash(index: int, attempt: int, rate: float) -> bool:
    """Deterministic fault-injection decision (same on every platform)."""
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    seed = os.environ.get(CRASH_SEED_ENV, "0")
    digest = hashlib.sha256(f"{seed}:{index}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64 < rate


@dataclass(frozen=True)
class SchedulerConfig:
    """Pool-level policy knobs (all validated at scheduler construction).

    ``timeout_seconds`` is per job, measured from assignment to a ready
    worker; ``None`` disables the timeout.  ``transport`` selects real
    processes (``"process"``) or the in-parent ``"inline"`` mode the
    property tests use to exercise merge determinism cheaply (inline mode
    still honours fault injection by *simulating* a crash, so the retry
    and quarantine paths run without forking).  ``start_method`` picks the
    multiprocessing context (default: ``fork`` where available — worker
    startup then inherits the parent's modules; ``spawn`` workers rebuild
    from pickled state and attach tables from the shared-memory arena)."""

    workers: int = 2
    timeout_seconds: float | None = 120.0
    max_retries: int = 2
    backoff_seconds: float = 0.05
    transport: str = "process"
    start_method: str | None = None
    inline_order_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ParallelError("scheduler needs at least one worker")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ParallelError("timeout_seconds must be positive (or None)")
        if self.max_retries < 0:
            raise ParallelError("max_retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ParallelError("backoff_seconds must be >= 0")
        if self.transport not in ("process", "inline"):
            raise ParallelError(f"unknown transport {self.transport!r}")


@dataclass
class WorkerContext:
    """What a worker-state initializer receives: identity + local sinks."""

    worker: int
    recorder: TraceRecorder
    metrics: MetricsRegistry
    hooks: ObservationHooks


@dataclass(frozen=True)
class JobOutcome:
    """One completed job, in submission order after the merge."""

    index: int
    result: Any
    worker: int
    attempts: int
    seconds: float


@dataclass(frozen=True)
class JobFailure:
    """One quarantined job: final disposition, never retried again."""

    index: int
    reason: str  # "crash" | "timeout" | "error"
    attempts: int
    detail: str = ""


@dataclass(frozen=True)
class WorkerReport:
    """Per-worker observability payload collected after a run."""

    worker: int
    pid: int
    jobs_done: int
    records: tuple[dict, ...]
    metrics: dict


@dataclass(frozen=True)
class ScheduleResult:
    """Everything one ``run`` produces, deterministically ordered."""

    outcomes: tuple[JobOutcome, ...]
    failures: tuple[JobFailure, ...]
    reports: tuple[WorkerReport, ...]
    counters: SchedulerCounters
    wall_seconds: float

    @property
    def results(self) -> list:
        """Completed job results, ordered by submission index."""
        return [o.result for o in self.outcomes]


@dataclass
class _Slot:
    """Parent-side bookkeeping of one worker slot."""

    proc: Any = None
    task_q: Any = None
    ready: bool = False
    inflight: tuple[int, int, float] | None = None  # (index, attempt, t_assigned)
    jobs_done: int = 0
    idle_deaths: int = 0
    report: WorkerReport | None = None


# ---------------------------------------------------------------------------
# Worker process body (module level: picklable under spawn)
# ---------------------------------------------------------------------------
def _worker_main(
    slot: int,
    task_q,
    result_q,
    init_fn: Callable,
    init_args: tuple,
    worker_fn: Callable,
    trace_enabled: bool,
) -> None:  # pragma: no cover - exercised in subprocesses
    recorder = TraceRecorder(enabled=trace_enabled)
    metrics = MetricsRegistry()
    ctx = WorkerContext(
        worker=slot, recorder=recorder, metrics=metrics, hooks=TraceHooks(recorder)
    )
    state = init_fn(ctx, *init_args)
    rate = _crash_rate()
    jobs_done = 0
    result_q.put(("ready", slot))
    while True:
        msg = task_q.get()
        kind = msg[0]
        if kind == "stop":
            result_q.put(("bye", slot))
            return
        if kind == "flush":
            result_q.put(
                (
                    "report",
                    slot,
                    {
                        "pid": os.getpid(),
                        "jobs_done": jobs_done,
                        "records": [r.to_dict() for r in recorder.records],
                        "metrics": metrics.to_dict(),
                    },
                )
            )
            if recorder.enabled:
                recorder.reset()  # next run reports only its own spans
            continue
        _, index, attempt, payload = msg
        if _should_crash(index, attempt, rate):
            # Flush the queue feeder first: dying while it holds the
            # shared queue's write lock mid-message would wedge every
            # other worker's put() forever.  Real crashes originate in
            # user code with an idle feeder, so they don't hit this
            # window; the injected one is timed to, deliberately.
            result_q.close()
            result_q.join_thread()
            os._exit(_CRASH_EXIT)
        t0 = time.perf_counter()
        try:
            with ctx.hooks.region("job", job=index, attempt=attempt, worker=slot):
                result = worker_fn(state, payload)
        except Exception as exc:
            metrics.counter("jobs_failed").inc()
            result_q.put(
                (
                    "error",
                    slot,
                    index,
                    attempt,
                    time.perf_counter() - t0,
                    f"{type(exc).__name__}: {exc}\n{traceback_mod.format_exc()}",
                )
            )
        else:
            elapsed = time.perf_counter() - t0
            metrics.histogram("job_seconds").observe(elapsed)
            metrics.counter("jobs_completed").inc()
            result_q.put(("done", slot, index, attempt, elapsed, result))
        jobs_done += 1


class _SimulatedCrash(Exception):
    """Inline-transport stand-in for a worker death (fault injection)."""


class ProcessScheduler:
    """A persistent, crash-tolerant pool executing ``worker_fn`` on jobs.

    Parameters
    ----------
    init_fn, init_args:
        ``init_fn(ctx, *init_args)`` runs once per worker *process* (and
        once more after each respawn) and returns the worker state —
        for reconstructions, the worker-local
        :class:`~repro.batch.engine.BatchFitEngine` attached to the
        shared table arena.  Must be a module-level callable with
        picklable arguments (``spawn`` compatibility).
    worker_fn:
        ``worker_fn(state, payload) -> result`` executes one job.
    hooks:
        Parent-side observation hooks; scheduling decisions emit events
        here, and ``hooks.enabled`` switches worker-side tracing on.
    """

    def __init__(
        self,
        init_fn: Callable,
        init_args: tuple = (),
        worker_fn: Callable | None = None,
        *,
        config: SchedulerConfig | None = None,
        hooks: ObservationHooks | None = None,
    ) -> None:
        if worker_fn is None:
            raise ParallelError("scheduler needs a worker_fn")
        self.config = config if config is not None else SchedulerConfig()
        self.hooks = hooks if hooks is not None else NULL_HOOKS
        self.counters = SchedulerCounters()
        self._init_fn = init_fn
        self._init_args = init_args
        self._worker_fn = worker_fn
        self._slots: list[_Slot] = []
        self._closed = False
        self._started = False
        if self.config.transport == "process":
            method = self.config.start_method
            if method is None:
                method = "fork" if "fork" in _available_methods() else "spawn"
            self._ctx = get_context(method)
            self._result_q = self._ctx.Queue()
        else:
            self._ctx = None
            self._result_q = None
            self._inline_states: dict[int, Any] = {}
            self._inline_ctxs: dict[int, WorkerContext] = {}

    # -- pool lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Spawn the pool (idempotent; ``run`` calls it on first use)."""
        if self._closed:
            raise ParallelError("scheduler already closed")
        if self._started:
            return
        self._started = True
        if self.config.transport == "process":
            self._slots = [_Slot() for _ in range(self.config.workers)]
            for slot_id in range(self.config.workers):
                self._spawn(slot_id)
        else:
            self._slots = [_Slot(ready=True) for _ in range(self.config.workers)]

    def _spawn(self, slot_id: int) -> None:
        slot = self._slots[slot_id]
        slot.task_q = self._ctx.Queue()
        slot.ready = False
        slot.inflight = None
        slot.proc = self._ctx.Process(
            target=_worker_main,
            args=(
                slot_id,
                slot.task_q,
                self._result_q,
                self._init_fn,
                self._init_args,
                self._worker_fn,
                bool(self.hooks.enabled),
            ),
            name=f"repro-pfleet-{slot_id}",
            daemon=True,
        )
        slot.proc.start()

    def _respawn(self, slot_id: int) -> None:
        self.counters.worker_restarts += 1
        self.hooks.event("worker_restart", worker=slot_id)
        slot = self._slots[slot_id]
        if slot.proc is not None and slot.proc.is_alive():  # timeout path
            slot.proc.kill()
            slot.proc.join()
        self._spawn(slot_id)

    def close(self) -> None:
        """Stop every worker and join (idempotent)."""
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        if self.config.transport != "process":
            return
        for slot in self._slots:
            if slot.proc is not None and slot.proc.is_alive():
                try:
                    slot.task_q.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - dying pool
                    pass
        deadline = time.monotonic() + 5.0
        for slot in self._slots:
            if slot.proc is not None:
                slot.proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if slot.proc.is_alive():  # pragma: no cover - hung worker
                    slot.proc.kill()
                    slot.proc.join()

    def __enter__(self) -> "ProcessScheduler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- the run loop --------------------------------------------------------------
    def run(self, payloads: Sequence[Any]) -> ScheduleResult:
        """Execute one job per payload; block until all are disposed of."""
        if self._closed:
            raise ParallelError("scheduler already closed")
        payloads = list(payloads)
        if not payloads:
            raise ParallelError("run() needs at least one payload")
        self.start()
        t0 = time.perf_counter()
        self.counters.submitted += len(payloads)
        self.hooks.event(
            "schedule_run_start", n_jobs=len(payloads), workers=self.config.workers
        )
        if self.config.transport == "inline":
            result = self._run_inline(payloads, t0)
        else:
            result = self._run_processes(payloads, t0)
        self.hooks.event(
            "schedule_run_end",
            completed=len(result.outcomes),
            quarantined=len(result.failures),
            wall_seconds=result.wall_seconds,
        )
        return result

    def _dispose(
        self,
        index: int,
        attempt: int,
        reason: str,
        detail: str,
        pending: deque,
        failures: dict[int, JobFailure],
        payloads: list,
        outcomes: dict[int, JobOutcome] | None = None,
    ) -> None:
        """Retry (crash/timeout, budget left) or quarantine a failed job."""
        if outcomes is not None and index in outcomes:
            # The worker flushed this job's result and then died before
            # the next assignment: the completion already landed, so the
            # death takes no job with it.
            return
        retryable = reason in ("crash", "timeout")
        if retryable and attempt <= self.config.max_retries:
            delay = self.config.backoff_seconds * 2.0 ** (attempt - 1)
            pending.append((time.monotonic() + delay, index, attempt + 1))
            self.counters.retries += 1
            self.hooks.event(
                "job_retry", job=index, attempt=attempt + 1, reason=reason
            )
        else:
            failures[index] = JobFailure(
                index=index, reason=reason, attempts=attempt, detail=detail
            )
            self.counters.quarantined += 1
            self.hooks.event(
                "job_quarantined", job=index, attempts=attempt, reason=reason
            )

    def _run_processes(self, payloads: list, t0: float) -> ScheduleResult:
        cfg = self.config
        n = len(payloads)
        #: (ready_time, index, attempt) — backoff delays live here.
        pending: deque = deque((0.0, i, 1) for i in range(n))
        outcomes: dict[int, JobOutcome] = {}
        failures: dict[int, JobFailure] = {}
        while len(outcomes) + len(failures) < n:
            now = time.monotonic()
            # Assign ready jobs to ready idle workers.
            for slot_id, slot in enumerate(self._slots):
                if not pending:
                    break
                if slot.ready and slot.inflight is None:
                    # Pull the first pending entry whose backoff elapsed.
                    for _ in range(len(pending)):
                        ready_at, index, attempt = pending[0]
                        if ready_at <= now:
                            pending.popleft()
                            slot.inflight = (index, attempt, time.monotonic())
                            slot.task_q.put(("job", index, attempt, payloads[index]))
                            self.hooks.event(
                                "job_assigned", job=index, attempt=attempt, worker=slot_id
                            )
                            break
                        pending.rotate(-1)
            # Drain worker messages.
            try:
                msg = self._result_q.get(timeout=_POLL_SECONDS)
            except Empty:
                msg = None
            while msg is not None:
                self._handle_message(msg, outcomes, failures, pending, payloads, t0)
                try:
                    msg = self._result_q.get_nowait()
                except Empty:
                    msg = None
            # Detect deaths and timeouts.
            now = time.monotonic()
            for slot_id, slot in enumerate(self._slots):
                if slot.proc is None:
                    continue
                if not slot.proc.is_alive():
                    self._on_death(slot_id, pending, failures, payloads, outcomes)
                elif (
                    slot.inflight is not None
                    and cfg.timeout_seconds is not None
                    and slot.ready
                    and now - slot.inflight[2] > cfg.timeout_seconds
                ):
                    index, attempt, _ = slot.inflight
                    slot.inflight = None
                    self.counters.timeouts += 1
                    self.hooks.event(
                        "job_timeout", job=index, attempt=attempt, worker=slot_id
                    )
                    self._dispose(
                        index,
                        attempt,
                        "timeout",
                        f"exceeded {cfg.timeout_seconds}s on worker {slot_id}",
                        pending,
                        failures,
                        payloads,
                    )
                    self._respawn(slot_id)
        reports = self._collect_reports()
        return ScheduleResult(
            outcomes=tuple(outcomes[i] for i in sorted(outcomes)),
            failures=tuple(failures[i] for i in sorted(failures)),
            reports=reports,
            counters=self.counters.snapshot(),
            wall_seconds=time.perf_counter() - t0,
        )

    def _handle_message(
        self,
        msg: tuple,
        outcomes: dict[int, JobOutcome],
        failures: dict[int, JobFailure],
        pending: deque,
        payloads: list,
        t0: float,
    ) -> None:
        kind = msg[0]
        if kind == "ready":
            slot = self._slots[msg[1]]
            slot.ready = True
            slot.idle_deaths = 0
        elif kind == "done":
            _, slot_id, index, attempt, seconds, result = msg
            slot = self._slots[slot_id]
            slot.inflight = None
            slot.jobs_done += 1
            if index in outcomes:  # retried after a stale completion
                return
            outcomes[index] = JobOutcome(
                index=index,
                result=result,
                worker=slot_id,
                attempts=attempt,
                seconds=seconds,
            )
            self.counters.completed += 1
            self.hooks.event(
                "job_done", job=index, attempt=attempt, worker=slot_id, seconds=seconds
            )
        elif kind == "error":
            _, slot_id, index, attempt, _seconds, detail = msg
            self._slots[slot_id].inflight = None
            self.counters.errors += 1
            self.hooks.event("job_error", job=index, attempt=attempt, worker=slot_id)
            self._dispose(index, attempt, "error", detail, pending, failures, payloads)
        elif kind == "report":
            _, slot_id, payload = msg
            self._slots[slot_id].report = WorkerReport(
                worker=slot_id,
                pid=payload["pid"],
                jobs_done=payload["jobs_done"],
                records=tuple(payload["records"]),
                metrics=payload["metrics"],
            )
        # "bye" needs no action: close() joins the process.

    def _on_death(
        self,
        slot_id: int,
        pending: deque,
        failures: dict[int, JobFailure],
        payloads: list,
        outcomes: dict[int, JobOutcome],
    ) -> None:
        slot = self._slots[slot_id]
        exitcode = slot.proc.exitcode
        if slot.inflight is not None:
            index, attempt, _ = slot.inflight
            slot.inflight = None
            self.counters.crashes += 1
            self.hooks.event(
                "worker_crash", worker=slot_id, job=index, exitcode=exitcode
            )
            self._dispose(
                index,
                attempt,
                "crash",
                f"worker {slot_id} died with exit code {exitcode}",
                pending,
                failures,
                payloads,
                outcomes,
            )
        else:
            slot.idle_deaths += 1
            if slot.idle_deaths >= _MAX_IDLE_DEATHS:
                raise ParallelError(
                    f"worker slot {slot_id} died {slot.idle_deaths} times during "
                    f"initialisation (last exit code {exitcode}) — pool is broken"
                )
        self._respawn(slot_id)

    def _collect_reports(self) -> tuple[WorkerReport, ...]:
        """Flush every live worker and gather its observability report.

        Workers still initialising (spawned but not yet "ready") are
        waited for, so a short run on a slow machine still yields one
        lane per worker in the merged trace."""
        awaiting_flush: set[int] = set()
        awaiting_ready: set[int] = set()
        for slot_id, slot in enumerate(self._slots):
            slot.report = None
            if slot.proc is not None and slot.proc.is_alive():
                if slot.ready:
                    slot.task_q.put(("flush",))
                    awaiting_flush.add(slot_id)
                else:
                    awaiting_ready.add(slot_id)
        deadline = time.monotonic() + 10.0
        while (awaiting_flush or awaiting_ready) and time.monotonic() < deadline:
            try:
                msg = self._result_q.get(timeout=_POLL_SECONDS)
            except Empty:
                for slot_id in list(awaiting_ready | awaiting_flush):
                    proc = self._slots[slot_id].proc
                    if proc is None or not proc.is_alive():  # died mid-flush
                        awaiting_ready.discard(slot_id)
                        awaiting_flush.discard(slot_id)
                continue
            if msg[0] == "report":
                self._handle_message(msg, {}, {}, deque(), [], 0.0)
                awaiting_flush.discard(msg[1])
            elif msg[0] == "ready":
                self._slots[msg[1]].ready = True
                if msg[1] in awaiting_ready:
                    awaiting_ready.discard(msg[1])
                    self._slots[msg[1]].task_q.put(("flush",))
                    awaiting_flush.add(msg[1])
        return tuple(s.report for s in self._slots if s.report is not None)

    # -- inline transport ----------------------------------------------------------
    def _inline_state(self, slot_id: int):
        state = self._inline_states.get(slot_id)
        if state is None:
            recorder = TraceRecorder(enabled=bool(self.hooks.enabled))
            ctx = WorkerContext(
                worker=slot_id,
                recorder=recorder,
                metrics=MetricsRegistry(),
                hooks=TraceHooks(recorder),
            )
            self._inline_ctxs[slot_id] = ctx
            state = self._inline_states[slot_id] = self._init_fn(
                ctx, *self._init_args
            )
        return state

    def _run_inline(self, payloads: list, t0: float) -> ScheduleResult:
        """In-parent execution with the same retry/quarantine semantics.

        Jobs are assigned round-robin to worker slots; a fault-injected
        "crash" raises internally and follows the process path's retry
        logic.  Completion order is deliberately scrambled by
        ``inline_order_seed`` before the merge, so tests can assert the
        merge is order-independent without forking."""
        rate = _crash_rate()
        pending: deque = deque((0.0, i, 1) for i in range(len(payloads)))
        completed: list[JobOutcome] = []
        failures: dict[int, JobFailure] = {}
        while pending:
            _, index, attempt = pending.popleft()
            slot_id = index % self.config.workers
            state = self._inline_state(slot_id)
            ctx = self._inline_ctxs[slot_id]
            t_job = time.perf_counter()
            try:
                if _should_crash(index, attempt, rate):
                    raise _SimulatedCrash(f"injected crash (attempt {attempt})")
                with ctx.hooks.region("job", job=index, attempt=attempt, worker=slot_id):
                    result = self._worker_fn(state, payloads[index])
            except _SimulatedCrash as exc:
                self.counters.crashes += 1
                self.hooks.event("worker_crash", worker=slot_id, job=index)
                self._dispose(
                    index, attempt, "crash", str(exc), pending, failures, payloads
                )
            except Exception as exc:
                ctx.metrics.counter("jobs_failed").inc()
                self.counters.errors += 1
                self.hooks.event("job_error", job=index, attempt=attempt, worker=slot_id)
                self._dispose(
                    index,
                    attempt,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    pending,
                    failures,
                    payloads,
                )
            else:
                elapsed = time.perf_counter() - t_job
                ctx.metrics.histogram("job_seconds").observe(elapsed)
                ctx.metrics.counter("jobs_completed").inc()
                self._slots[slot_id].jobs_done += 1
                completed.append(
                    JobOutcome(
                        index=index,
                        result=result,
                        worker=slot_id,
                        attempts=attempt,
                        seconds=elapsed,
                    )
                )
                self.counters.completed += 1
        # Scramble completion order deterministically, then merge: the
        # result must not depend on this permutation.
        import random

        shuffled = completed[:]
        random.Random(self.config.inline_order_seed).shuffle(shuffled)
        merged = {o.index: o for o in shuffled}
        reports = tuple(
            WorkerReport(
                worker=slot_id,
                pid=os.getpid(),
                jobs_done=self._slots[slot_id].jobs_done,
                records=tuple(
                    r.to_dict() for r in self._inline_ctxs[slot_id].recorder.records
                ),
                metrics=self._inline_ctxs[slot_id].metrics.to_dict(),
            )
            for slot_id in sorted(self._inline_ctxs)
        )
        for ctx in self._inline_ctxs.values():
            if ctx.recorder.enabled:
                ctx.recorder.reset()
        return ScheduleResult(
            outcomes=tuple(merged[i] for i in sorted(merged)),
            failures=tuple(failures[i] for i in sorted(failures)),
            reports=reports,
            counters=self.counters.snapshot(),
            wall_seconds=time.perf_counter() - t0,
        )


def _available_methods() -> tuple[str, ...]:
    import multiprocessing

    return tuple(multiprocessing.get_all_start_methods())
