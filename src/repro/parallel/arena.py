"""Shared-memory arenas for the per-grid Green-function tables.

The boundary Green table is the single largest per-grid object in the
code base — ``(nw, nh, nw)`` float64, 1.08 GB at 513x513 — and it is
*immutable* after construction: every worker of a multi-process
reconstruction fleet reads the identical bytes.  Materialising a private
copy per worker process would multiply resident memory by the worker
count and pay the O(N^3) table build once per process.

:class:`TableArena` instead places one read-only copy in a
``multiprocessing.shared_memory`` segment.  The parent builds it once
(from the process-wide :class:`~repro.efit.tables.BoundaryTableCache`,
so a previously cached table is copied, not rebuilt), workers attach by
name and map the same physical pages.  Worker startup cost is therefore
O(1) in grid size after the first job, under both ``fork`` and ``spawn``
start methods — a forked child *re-seeds* its inherited table cache with
the shared-memory view, so copy-on-write never duplicates the pages
either.

Lifecycle (see ``docs/PARALLEL.md``):

* the parent-side :class:`ArenaManager` keys arenas by grid geometry and
  reference-counts them — two engines on the same grid share one arena;
* :meth:`ArenaManager.release` unlinks the segment at refcount zero;
* an ``atexit`` hook unlinks anything leaked by a crashed parent, so
  ``/dev/shm`` is not littered across runs;
* workers attach read-only (the numpy views have ``writeable = False``)
  and only ever ``close()`` — the parent owns ``unlink()``.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.efit.grid import RZGrid
from repro.efit.operators import (
    DenseEdgeOperator,
    EdgeOperator,
    cached_edge_operator,
    edge_operator_from_arrays,
)
from repro.efit.tables import BoundaryGreensTables, cached_boundary_tables
from repro.errors import ArenaError

__all__ = [
    "ArenaSegment",
    "ArenaSpec",
    "TableArena",
    "AttachedArena",
    "ArenaManager",
    "arena_manager",
    "attach_arena",
]

#: Segment alignment inside one shared block (cache-line friendly).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArenaSegment:
    """One named array inside a shared block (picklable descriptor)."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a worker needs to attach an arena: the shared-memory
    segment name, the grid geometry and the array layout.  Picklable, so
    it travels in the worker-initialisation arguments under ``spawn``."""

    shm_name: str
    grid_nw: int
    grid_nh: int
    grid_rmin: float
    grid_rmax: float
    grid_zmin: float
    grid_zmax: float
    segments: tuple[ArenaSegment, ...]
    #: Edge-operator representation stored in the arena (one of
    #: :data:`repro.efit.operators.EDGE_METHODS`).
    boundary_method: str = "dense"
    #: Content identity — grid hash + method + rank/precision tag — so
    #: two processes can tell at a glance whether their arenas are
    #: interchangeable (the distributed-fleet transport will key on it).
    content_key: str = ""

    def grid(self) -> RZGrid:
        return RZGrid(
            self.grid_nw,
            self.grid_nh,
            rmin=self.grid_rmin,
            rmax=self.grid_rmax,
            zmin=self.grid_zmin,
            zmax=self.grid_zmax,
        )

    def segment(self, name: str) -> ArenaSegment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise ArenaError(f"arena {self.shm_name!r} has no segment {name!r}")


def _view(shm: shared_memory.SharedMemory, seg: ArenaSegment) -> np.ndarray:
    """A read-only ndarray over one segment of ``shm``."""
    arr = np.ndarray(
        seg.shape, dtype=np.dtype(seg.dtype), buffer=shm.buf, offset=seg.offset
    )
    arr.flags.writeable = False
    return arr


def _shared_edge_operator(
    shm: shared_memory.SharedMemory, spec: ArenaSpec
) -> EdgeOperator:
    """Rebuild the arena's edge operator over its shared segments."""
    grid = spec.grid()
    if spec.boundary_method == "dense":
        return DenseEdgeOperator(grid, _view(shm, spec.segment("edge_operator")))
    arrays = {
        seg.name[3:]: _view(shm, seg)
        for seg in spec.segments
        if seg.name.startswith("op_")
    }
    return edge_operator_from_arrays(
        grid, spec.boundary_method, arrays, gpc=_view(shm, spec.segment("gpc"))
    )


_NAME_SEQ = 0
_NAME_LOCK = threading.Lock()


def _fresh_name() -> str:
    global _NAME_SEQ
    with _NAME_LOCK:
        _NAME_SEQ += 1
        return f"repro_{os.getpid()}_{_NAME_SEQ}"


class TableArena:
    """Parent-side owner of one shared-memory table block.

    Holds the Green table (``gpc``) and the dense edge-flux operator for
    one grid.  Create with :meth:`build`; hand :attr:`spec` to workers;
    :meth:`unlink` exactly once when the last user is done (the
    :class:`ArenaManager` does the counting).
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, spec: ArenaSpec
    ) -> None:
        self._shm = shm
        self.spec = spec
        self._unlinked = False

    @classmethod
    def build(cls, grid: RZGrid, boundary_method: str = "dense") -> "TableArena":
        """Copy the (cached) boundary tables + edge operator into shm.

        ``boundary_method`` picks the operator representation shared with
        the workers: the dense matrix (historical layout, segment name
        ``edge_operator``) or a compressed form whose
        :meth:`~repro.efit.operators.EdgeOperator.to_arrays` segments are
        stored under ``op_*`` names — at 257x257 a ``lowrank`` arena is
        ~510 MB smaller per *fleet* (the pages are shared either way, but
        the build, the copy and the cache pressure all shrink).
        """
        tables = cached_boundary_tables(grid)
        op = cached_edge_operator(tables, boundary_method)
        arrays = {"gpc": np.ascontiguousarray(tables.gpc)}
        if boundary_method == "dense":
            arrays["edge_operator"] = np.ascontiguousarray(op.matrix)
        else:
            for name, arr in op.to_arrays().items():
                arrays[f"op_{name}"] = np.ascontiguousarray(arr)
        segments: list[ArenaSegment] = []
        offset = 0
        for name, arr in arrays.items():
            offset = _aligned(offset)
            segments.append(
                ArenaSegment(
                    name=name,
                    shape=tuple(arr.shape),
                    dtype=arr.dtype.str,
                    offset=offset,
                )
            )
            offset += arr.nbytes
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=max(offset, 1), name=_fresh_name()
            )
        except OSError as exc:  # pragma: no cover - environment dependent
            raise ArenaError(f"cannot create shared-memory arena: {exc}") from exc
        spec = ArenaSpec(
            shm_name=shm.name,
            grid_nw=grid.nw,
            grid_nh=grid.nh,
            grid_rmin=grid.rmin,
            grid_rmax=grid.rmax,
            grid_zmin=grid.zmin,
            grid_zmax=grid.zmax,
            segments=tuple(segments),
            boundary_method=boundary_method,
            content_key=op.content_key,
        )
        arena = cls(shm, spec)
        for seg in segments:
            dst = np.ndarray(
                seg.shape, dtype=np.dtype(seg.dtype), buffer=shm.buf, offset=seg.offset
            )
            np.copyto(dst, arrays[seg.name])
        return arena

    @property
    def nbytes(self) -> int:
        return sum(seg.nbytes for seg in self.spec.segments)

    def _require_mapped(self) -> None:
        """Refuse to hand out views over an unlinked mapping.

        This is the runtime twin of the static
        ``lifecycle-use-after-unlink`` rule: without it a stale view
        reads unmapped pages and the failure is a segfault somewhere
        else entirely (the PR 4 bug); with it the misuse is a clean
        :class:`~repro.errors.ArenaError` at the offending call."""
        if self._unlinked:
            raise ArenaError(
                f"arena {self.spec.shm_name!r} is unlinked: views over its "
                f"pages are gone (use-after-unlink)"
            )

    def tables(self) -> BoundaryGreensTables:
        """The parent's own read-only view (same pages the workers map)."""
        self._require_mapped()
        return BoundaryGreensTables(
            grid=self.spec.grid(), gpc=_view(self._shm, self.spec.segment("gpc"))
        )

    def edge_operator(self) -> np.ndarray:
        """The dense matrix view (dense arenas only — structured arenas
        have no ``edge_operator`` segment and this raises)."""
        self._require_mapped()
        return _view(self._shm, self.spec.segment("edge_operator"))

    def edge_op(self) -> EdgeOperator:
        """The arena's edge operator, whatever its representation."""
        self._require_mapped()
        return _shared_edge_operator(self._shm, self.spec)

    def unlink(self) -> None:
        """Close and remove the segment (idempotent; parent-side only)."""
        if self._unlinked:
            return
        self._unlinked = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class AttachedArena:
    """Worker-side view of an arena: attach by name, close on exit.

    Keeps the ``SharedMemory`` handle alive for as long as the numpy
    views are in use.  The attachment is *not* registered with the
    ``resource_tracker`` because the *parent* owns the segment's
    lifetime — without this, every worker exit would race to unlink the
    arena the other workers are still mapping (a long-standing CPython
    sharp edge with attached segments; CPython 3.13 adds ``track=False``
    for exactly this, here emulated by suppressing the registration
    call during attach).
    """

    def __init__(self, spec: ArenaSpec) -> None:
        self.spec = spec
        self._closed = False
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            self._shm = shared_memory.SharedMemory(name=spec.shm_name)
        except FileNotFoundError:
            raise ArenaError(
                f"arena {spec.shm_name!r} does not exist (parent gone or unlinked)"
            ) from None
        finally:
            resource_tracker.register = original_register

    def _require_open(self) -> None:
        """Runtime twin of ``lifecycle-use-after-unlink`` on the worker
        side: a view handed out after ``close()`` would dereference an
        unmapped buffer."""
        if self._closed:
            raise ArenaError(
                f"attached arena {self.spec.shm_name!r} is closed: views over "
                f"its pages are gone (use-after-close)"
            )

    def tables(self) -> BoundaryGreensTables:
        self._require_open()
        return BoundaryGreensTables(
            grid=self.spec.grid(), gpc=_view(self._shm, self.spec.segment("gpc"))
        )

    def edge_operator(self) -> np.ndarray:
        """The dense matrix view (dense arenas only)."""
        self._require_open()
        return _view(self._shm, self.spec.segment("edge_operator"))

    def edge_op(self) -> EdgeOperator:
        """The arena's edge operator, whatever its representation."""
        self._require_open()
        return _shared_edge_operator(self._shm, self.spec)

    def close(self) -> None:
        """Unmap the attachment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()


def attach_arena(spec: ArenaSpec) -> AttachedArena:
    """Worker-side entry point: map the arena described by ``spec``."""
    return AttachedArena(spec)


class ArenaManager:
    """Reference-counted registry of arenas, keyed by content identity.

    The key is grid geometry *plus* edge-operator method: a ``dense``
    and a ``lowrank`` fleet on the same grid hold different operator
    bytes, so they get distinct arenas; two fleets with the same grid
    and method share one.  ``acquire`` builds the arena on first use and
    bumps the refcount on every later call with the same identity;
    ``release`` unlinks at zero.  One manager per parent process (see
    :func:`arena_manager`).
    """

    def __init__(self) -> None:
        self._arenas: dict[tuple, TableArena] = {}
        self._refs: dict[tuple, int] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(grid: RZGrid, boundary_method: str = "dense") -> tuple:
        return (grid.geometry_hash(), boundary_method)

    def acquire(self, grid: RZGrid, boundary_method: str = "dense") -> TableArena:
        key = self._key(grid, boundary_method)
        with self._lock:
            arena = self._arenas.get(key)
            if arena is None:
                arena = TableArena.build(grid, boundary_method)
                self._arenas[key] = arena
                self._refs[key] = 0
            self._refs[key] += 1
            return arena

    def release(self, grid: RZGrid, boundary_method: str = "dense") -> None:
        key = self._key(grid, boundary_method)
        with self._lock:
            if key not in self._refs:
                raise ArenaError("release() of an arena that was never acquired")
            self._refs[key] -= 1
            if self._refs[key] <= 0:
                self._arenas.pop(key).unlink()
                del self._refs[key]

    def refcount(self, grid: RZGrid, boundary_method: str = "dense") -> int:
        with self._lock:
            return self._refs.get(self._key(grid, boundary_method), 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._arenas)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(a.nbytes for a in self._arenas.values())

    def shutdown(self) -> None:
        """Unlink everything regardless of refcounts (atexit safety net)."""
        with self._lock:
            for arena in self._arenas.values():
                arena.unlink()
            self._arenas.clear()
            self._refs.clear()


_MANAGER = ArenaManager()
atexit.register(_MANAGER.shutdown)


def arena_manager() -> ArenaManager:
    """The process-wide arena manager (parent side)."""
    return _MANAGER
