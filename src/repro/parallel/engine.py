"""The multi-process reconstruction engine.

:class:`ParallelFitEngine` mirrors the
:class:`~repro.batch.engine.BatchFitEngine` API — same constructor
shape, same ``fit_many(slices)`` entry point — but shards the slice
sequence across worker *processes* through the
:class:`~repro.parallel.scheduler.ProcessScheduler`:

* the parent acquires one shared-memory
  :class:`~repro.parallel.arena.TableArena` per grid (reference-counted
  by the process-wide :class:`~repro.parallel.arena.ArenaManager`) and
  ships only its :class:`~repro.parallel.arena.ArenaSpec` to workers;
* each worker attaches the arena, seeds its
  :class:`~repro.efit.tables.BoundaryTableCache` with the read-only
  view, and builds a private :class:`~repro.batch.engine.BatchFitEngine`
  on top — worker startup is O(1) in grid size;
* jobs are the *same* ``batch_size`` groups the serial engine forms
  (``slices[start : start + batch_size]``), so every slice runs through
  ``_fit_batch`` with identical array shapes and the merged results are
  **bit-identical** to a serial ``BatchFitEngine.fit_many`` — BLAS GEMM
  reductions depend on operand shapes, so sharding at any other
  granularity would only be close, not equal (the Hypothesis suite pins
  the equality down);
* the deterministic merge orders job results by submission index, so
  worker count and completion order are invisible in the output.

Quarantined jobs (crash-looping or deterministically failing) raise
:class:`~repro.errors.JobQuarantinedError` by default;
``allow_failures=True`` instead returns the surviving slices plus the
:class:`~repro.parallel.scheduler.JobFailure` records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.batch.engine import BatchFitEngine
from repro.batch.slices import BatchStats
from repro.efit.diagnostics import DiagnosticSet
from repro.efit.fitting import FitResult
from repro.efit.grid import RZGrid
from repro.efit.machine import Tokamak
from repro.efit.operators import drop_edge_operator, seed_edge_operator
from repro.efit.tables import boundary_table_cache
from repro.errors import FittingError, JobQuarantinedError
from repro.obs.hooks import NULL_HOOKS, ObservationHooks, TraceHooks
from repro.obs.metrics import MetricsRegistry, scheduler_source
from repro.parallel.arena import arena_manager, attach_arena
from repro.parallel.merge import merge_metrics, merged_chrome_trace
from repro.parallel.scheduler import (
    JobFailure,
    ProcessScheduler,
    SchedulerConfig,
    WorkerContext,
    WorkerReport,
)

__all__ = ["ParallelFitEngine", "ParallelFitResult"]


@dataclass(frozen=True)
class ParallelFitResult:
    """Everything a parallel ``fit_many`` produces.

    ``results`` holds the completed slices in submission order — with no
    failures it is element-wise identical to the serial engine's tuple.
    ``latencies`` are per-slice completion times measured inside each
    worker from its job start (comparable across workers; *not* offset
    by queueing delay).
    """

    results: tuple[FitResult, ...]
    stats: BatchStats
    latencies: np.ndarray
    failures: tuple[JobFailure, ...]
    worker_reports: tuple[WorkerReport, ...]
    wall_seconds: float


# -- worker-side plumbing (module level: picklable under spawn) --------------------
def _init_fit_worker(
    ctx: WorkerContext,
    spec,
    machine: Tokamak,
    diagnostics: DiagnosticSet,
    batch_size: int,
    solver_kwargs: dict,
) -> dict[str, Any]:
    """Attach the table arena and build this worker's private engine."""
    arena = attach_arena(spec)
    tables = arena.tables()
    # Every later cached_boundary_tables(grid) in this process — including
    # the engine's own — now resolves to the shared pages.
    boundary_table_cache().seed(tables)
    op = arena.edge_op()
    # Same story for the edge-operator cache: content identity (grid hash
    # + method + rank/precision tag) means any later cached_edge_operator
    # call with this method reuses the shared pages instead of rebuilding.
    seed_edge_operator(op)
    engine = BatchFitEngine(
        machine,
        diagnostics,
        spec.grid(),
        batch_size=batch_size,
        hooks=ctx.hooks,
        edge_operator=op,
        **solver_kwargs,
    )
    ctx.metrics.register_source(
        "table_cache", lambda: boundary_table_cache().cache_info()
    )
    return {"arena": arena, "engine": engine}


def _run_fit_job(state: dict[str, Any], payload: tuple) -> tuple:
    """Reconstruct one batch group; returns (results, latencies, iters)."""
    slices, psi_initial, require_convergence = payload
    engine: BatchFitEngine = state["engine"]
    out = engine.fit_many(
        slices, psi_initial=psi_initial, require_convergence=require_convergence
    )
    return (out.results, out.latencies, out.stats.total_iterations)


class ParallelFitEngine:
    """Reconstruct many time slices across worker processes.

    Parameters mirror :class:`~repro.batch.engine.BatchFitEngine`;
    ``workers`` replaces ``n_workers`` (processes, not threads) and
    ``config`` exposes the scheduler policy (timeouts, retry budget,
    transport).  Use as a context manager — or call :meth:`close` — to
    stop the pool and release the table arena.
    """

    def __init__(
        self,
        machine: Tokamak,
        diagnostics: DiagnosticSet,
        grid: RZGrid,
        *,
        batch_size: int = 8,
        workers: int = 2,
        boundary_method: str = "dense",
        hooks: ObservationHooks | None = None,
        config: SchedulerConfig | None = None,
        **solver_kwargs,
    ) -> None:
        if batch_size < 1:
            raise FittingError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.hooks = hooks if hooks is not None else NULL_HOOKS
        self.grid = grid
        self.boundary_method = boundary_method
        if config is None:
            config = SchedulerConfig(workers=workers)
        elif config.workers != workers and workers != 2:
            raise FittingError(
                "pass the worker count either as workers= or in config=, not both"
            )
        self.config = config
        self._manager = arena_manager()
        self.arena = self._manager.acquire(grid, boundary_method)
        self._released = False
        self.scheduler = ProcessScheduler(
            _init_fit_worker,
            (self.arena.spec, machine, diagnostics, batch_size, dict(solver_kwargs)),
            _run_fit_job,
            config=self.config,
            hooks=self.hooks,
        )
        #: Parent-side registry: scheduler counters as a live source.
        self.metrics = MetricsRegistry()
        self.metrics.register_source(
            "scheduler", scheduler_source(self.scheduler.counters)
        )
        self._last_reports: tuple[WorkerReport, ...] = ()

    @classmethod
    def for_scenario(
        cls, scenario, n: int = 65, *, shot=None, **kwargs
    ) -> "ParallelFitEngine":
        """Build a fleet configured for a registered scenario.

        The scenario's ``solver_kwargs`` ship to every worker process
        alongside any explicit ``kwargs`` (which win on conflict), so
        scenario-specific solver settings — e.g. the single-null's
        off-midplane seed filament — apply identically in the fleet and
        in the serial engines it is compared against.
        """
        from repro.scenarios import get_scenario

        sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if shot is None:
            shot = sc.make_shot(n)
        merged = {**sc.solver_kwargs, **kwargs}
        return cls(shot.machine, shot.diagnostics, shot.grid, **merged)

    # -- lifecycle -----------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker pool and release the table arena (idempotent)."""
        self.scheduler.close()
        if not self._released:
            self._released = True
            if self.config.transport == "inline":
                # Inline workers ran _init_fit_worker in *this* process and
                # seeded the process-global caches with views over the
                # arena's pages.  Those views must not outlive the mapping.
                boundary_table_cache().drop(self.grid)
                drop_edge_operator(self.grid, self.boundary_method)
            self._manager.release(self.grid, self.boundary_method)

    def __enter__(self) -> "ParallelFitEngine":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- the parallel run ----------------------------------------------------------
    def fit_many(
        self,
        slices: Sequence,
        *,
        psi_initial: Sequence | None = None,
        require_convergence: bool = True,
        allow_failures: bool = False,
    ) -> ParallelFitResult:
        """Reconstruct every slice; deterministic merge by submission index.

        Jobs are the serial engine's exact ``batch_size`` groups, so with
        zero failures the merged ``results`` tuple is bit-identical to
        ``BatchFitEngine.fit_many`` on the same slices.  ``psi_initial``
        optionally warm-starts individual slices (one entry per slice,
        ``None`` = cold); the seeds ship to workers alongside their
        group, preserving the bit-identity with an equally warm-started
        serial engine.  Quarantined jobs raise
        :class:`~repro.errors.JobQuarantinedError` unless
        ``allow_failures=True``, in which case the surviving slices are
        returned alongside the failure records.
        """
        slices = list(slices)
        if not slices:
            raise FittingError("fit_many needs at least one slice")
        if psi_initial is not None:
            psi_initial = list(psi_initial)
            if len(psi_initial) != len(slices):
                raise FittingError(
                    f"psi_initial has {len(psi_initial)} entries for "
                    f"{len(slices)} slices"
                )
        groups = [
            (
                slices[start : start + self.batch_size],
                psi_initial[start : start + self.batch_size]
                if psi_initial is not None
                else None,
            )
            for start in range(0, len(slices), self.batch_size)
        ]
        t0 = time.perf_counter()
        schedule = self.scheduler.run(
            [(group, seeds, require_convergence) for group, seeds in groups]
        )
        self._last_reports = schedule.reports
        if schedule.failures and not allow_failures:
            lost = ", ".join(
                f"job {f.index} ({f.reason} x{f.attempts})" for f in schedule.failures
            )
            raise JobQuarantinedError(
                f"{len(schedule.failures)} job(s) quarantined: {lost}",
                failures=schedule.failures,
            )
        results: list[FitResult] = []
        latencies: list[float] = []
        total_iterations = 0
        for outcome in schedule.outcomes:
            group_results, group_latencies, group_iters = outcome.result
            results.extend(group_results)
            latencies.extend(float(v) for v in group_latencies)
            total_iterations += int(group_iters)
        wall = time.perf_counter() - t0
        if not results:
            raise JobQuarantinedError(
                "every job was quarantined", failures=schedule.failures
            )
        lat = np.asarray(latencies)
        stats = BatchStats.from_latencies(
            lat,
            wall,
            total_iterations=total_iterations,
            n_converged=sum(1 for r in results if r.converged),
        )
        return ParallelFitResult(
            results=tuple(results),
            stats=stats,
            latencies=lat,
            failures=schedule.failures,
            worker_reports=schedule.reports,
            wall_seconds=wall,
        )

    # -- merged observability ------------------------------------------------------
    def merged_trace(self) -> dict[str, Any]:
        """Chrome-trace payload of the last run: parent lane + worker lanes."""
        parent = (
            self.hooks.recorder if isinstance(self.hooks, TraceHooks) else None
        )
        return merged_chrome_trace(self._last_reports, parent=parent)

    def merged_metrics(self) -> dict[str, Any]:
        """Aggregated worker metrics of the last run, plus parent counters."""
        merged = merge_metrics(self._last_reports)
        merged["parent"] = self.metrics.collect()
        return merged
