"""Precomputed Green-function tables for the ``pflux_`` boundary sums.

EFIT computes the plasma contribution to the poloidal flux on the edge of
the computational box by summing the filament Green function against the
grid current.  Because the Z mesh is uniform, ``G`` between a boundary node
at column ``i_b`` and a source node at column ``ii`` depends on Z only
through ``|j_b - jj|``; EFIT therefore precomputes the table visible in the
paper's Figure 2/3 kernel::

    gridpc((i_b)*nh + mj, ii)    with    mj = |j_b - jj| + 1   (1-based)

i.e. a ``(nw*nh, nw)`` array whose row block ``i_b`` holds the Green
function from boundary-column ``i_b`` to every source column at every Z
offset.  The left edge uses block ``i_b = 1``, the right edge block
``i_b = nw`` (the ``mk=(nw-1)*nh+mj`` offset in the paper), and the
top/bottom edges walk all blocks.

:class:`BoundaryGreensTables` stores the same data as a 3-D array
``gpc[i_b, dj, ii]`` plus a :meth:`fortran_view` that reproduces EFIT's 2-D
layout exactly, so the reference kernel in :mod:`repro.efit.pflux` can be
compared line-by-line with the paper listing.

Coincident self terms (``i_b == ii`` and ``dj == 0`` — a boundary node
acting on itself) are regularised with the finite-filament self flux using
an effective wire radius derived from the cell area, as EFIT does.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.efit.greens import greens_psi, self_flux_per_radian
from repro.efit.grid import RZGrid
from repro.errors import GreensError
from repro.runtime.counters import CacheCounters

__all__ = [
    "BoundaryGreensTables",
    "BoundaryTableCache",
    "build_boundary_tables",
    "boundary_table_cache",
    "cached_boundary_tables",
    "effective_filament_radius",
]


def effective_filament_radius(grid: RZGrid) -> float:
    """Effective wire radius of a grid-cell filament: half the geometric
    mean of the cell sides (the standard finite-area regularisation)."""
    return 0.5 * float(np.sqrt(grid.dr * grid.dz))


@dataclass(frozen=True)
class BoundaryGreensTables:
    """Green tables from every boundary column to every grid node.

    Attributes
    ----------
    grid:
        The computational grid the tables were built for.
    gpc:
        ``(nw, nh, nw)`` array; ``gpc[i_b, dj, ii]`` is the flux per radian
        at radius ``r[i_b]`` from a unit filament at radius ``r[ii]``
        separated vertically by ``dj * dz``.
    """

    grid: RZGrid
    gpc: np.ndarray

    def __post_init__(self) -> None:
        expected = (self.grid.nw, self.grid.nh, self.grid.nw)
        if self.gpc.shape != expected:
            raise GreensError(f"gpc shape {self.gpc.shape}, expected {expected}")

    @property
    def nbytes(self) -> int:
        return int(self.gpc.nbytes)

    def fortran_view(self) -> np.ndarray:
        """The EFIT ``gridpc(nw*nh, nw)`` layout (0-based row ``i_b*nh+dj``).

        This is a reshaped view — no copy — so the reference kernel indexes
        the identical memory the vectorised kernels use.
        """
        nw, nh = self.grid.nw, self.grid.nh
        return self.gpc.reshape(nw * nh, nw)

    def left_block(self) -> np.ndarray:
        """``(nh, nw)`` table for the left edge (boundary column 0)."""
        return self.gpc[0]

    def right_block(self) -> np.ndarray:
        """``(nh, nw)`` table for the right edge (boundary column nw-1)."""
        return self.gpc[self.grid.nw - 1]


def _build_block(grid: RZGrid, i_b: int, a_eff: float) -> np.ndarray:
    """Build one ``(nh, nw)`` block: boundary column ``i_b`` vs all
    (dj, source column) pairs, with the coincident self term regularised."""
    nh, nw = grid.nh, grid.nw
    r_b = grid.r[i_b]
    dz_off = np.arange(nh) * grid.dz  # (nh,)
    rs = grid.r  # (nw,)
    block = np.empty((nh, nw))
    # dj == 0, ii == i_b is the coincident filament; compute it separately.
    rr_b = np.full((nh, nw), r_b)
    zz = np.broadcast_to(dz_off[:, None], (nh, nw))
    rs2 = np.broadcast_to(rs[None, :], (nh, nw))
    mask = np.ones((nh, nw), dtype=bool)
    mask[0, i_b] = False
    block[mask] = greens_psi(rr_b[mask], 0.0, rs2[mask], zz[mask])
    block[0, i_b] = self_flux_per_radian(r_b, a_eff)
    return block


def build_boundary_tables(grid: RZGrid, *, chunk: int = 32) -> BoundaryGreensTables:
    """Build the full boundary Green tables for ``grid``.

    The table is ``O(N^3)`` in storage — 1.08 GB at 513x513, which is
    precisely why the paper's kernels are memory-bandwidth bound and why
    unified-memory behaviour dominates the small-grid timings.  Construction
    is chunked over boundary columns to bound temporary memory.
    """
    if chunk < 1:
        raise GreensError("chunk must be >= 1")
    a_eff = effective_filament_radius(grid)
    gpc = np.empty((grid.nw, grid.nh, grid.nw))
    for i_b in range(grid.nw):
        gpc[i_b] = _build_block(grid, i_b, a_eff)
    return BoundaryGreensTables(grid=grid, gpc=gpc)


#: Default table-cache budget: holds one 513x513 table (1.08 GB) plus the
#: full small-grid sweep, overridable via ``REPRO_TABLE_CACHE_BYTES``.
_DEFAULT_CACHE_BYTES = 1_600_000_000


class BoundaryTableCache:
    """Bytes-bounded LRU cache of :class:`BoundaryGreensTables` per grid.

    The old ``lru_cache(maxsize=4)`` counted *entries*, so a fifth distinct
    grid evicted by recency regardless of size — a 513x513 table (1.08 GB)
    and a 33x33 one (280 kB) cost the same slot.  This cache bounds the
    *total bytes* instead: small grids coexist essentially for free and a
    big table only evicts when the budget genuinely runs out.  The most
    recently built table is always retained, even when it alone exceeds
    the budget.  Hit/miss/eviction statistics are exposed through a
    :class:`~repro.runtime.counters.CacheCounters` (:meth:`cache_info`)
    so the throughput benchmarks can assert table reuse across slices.
    """

    def __init__(self, max_bytes: int = _DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise GreensError("cache budget must be non-negative")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, BoundaryGreensTables] = OrderedDict()
        self.counters = CacheCounters()

    @staticmethod
    def _key(grid: RZGrid) -> tuple:
        return (grid.nw, grid.nh, grid.rmin, grid.rmax, grid.zmin, grid.zmax)

    @property
    def current_bytes(self) -> int:
        return sum(t.nbytes for t in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, grid: RZGrid) -> BoundaryGreensTables:
        """Return the cached tables for ``grid``, building on first use.

        A miss consults the optional on-disk layer
        (:mod:`repro.efit.diskcache`, ``REPRO_TABLE_CACHE_DIR``) before
        paying the O(N^3) build, and publishes a fresh build back to it.
        """
        key = self._key(grid)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.counters.record_hit()
            return entry
        from repro.efit import diskcache

        tables = diskcache.load_tables(grid)
        if tables is None:
            tables = build_boundary_tables(grid)
            diskcache.store_tables(tables)
        self.counters.record_miss(tables.nbytes)
        self._entries[key] = tables
        self._shrink()
        return tables

    def _shrink(self) -> None:
        """Evict least-recently-used entries until within budget (the
        newest entry is never evicted)."""
        while len(self._entries) > 1 and self.current_bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.counters.record_eviction(evicted.nbytes)

    def seed(self, tables: BoundaryGreensTables) -> None:
        """Install externally-built tables for their grid.

        The multi-process fleet uses this on the worker side: the parent
        publishes the tables in a shared-memory arena and each worker
        seeds its own cache with the read-only view, so every later
        ``cached_boundary_tables(grid)`` — including the engine-internal
        ones — resolves to the shared pages instead of an O(N^3) rebuild.
        Seeding the same grid twice replaces the entry (the bytes are
        identical by construction); statistics count it as a miss of
        zero *new* private bytes, since the pages are shared.
        """
        key = self._key(tables.grid)
        if key not in self._entries:
            self.counters.record_miss(0)
        self._entries[key] = tables
        self._entries.move_to_end(key)

    def drop(self, grid: RZGrid) -> None:
        """Forget the entry for ``grid`` (no-op when absent).

        The parallel engine's inline transport seeds *this* process's
        cache with shared-memory views; when the backing arena is about
        to be unlinked those views must not outlive the mapping, so the
        entry is dropped and the next ``get`` rebuilds privately.
        """
        self._entries.pop(self._key(grid), None)

    def set_max_bytes(self, max_bytes: int) -> None:
        """Re-bound the cache, evicting immediately if now over budget."""
        if max_bytes < 0:
            raise GreensError("cache budget must be non-negative")
        self.max_bytes = max_bytes
        self._shrink()

    def cache_info(self) -> dict[str, int]:
        """``functools.lru_cache``-style statistics, plus byte accounting."""
        return {
            "hits": self.counters.hits,
            "misses": self.counters.misses,
            "evictions": self.counters.evictions,
            "currsize": len(self._entries),
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.counters.reset()


def _cache_budget_from_env() -> int:
    raw = os.environ.get("REPRO_TABLE_CACHE_BYTES", "")
    try:
        return int(raw) if raw else _DEFAULT_CACHE_BYTES
    except ValueError:
        return _DEFAULT_CACHE_BYTES


_TABLE_CACHE = BoundaryTableCache(_cache_budget_from_env())


def boundary_table_cache() -> BoundaryTableCache:
    """The process-wide table cache (shared by fitting, batch engine and
    benchmarks); use its :meth:`~BoundaryTableCache.cache_info` hook to
    observe reuse."""
    return _TABLE_CACHE


def cached_boundary_tables(grid: RZGrid) -> BoundaryGreensTables:
    """Memoised table builder keyed on the grid geometry.

    The tables depend only on the mesh, not on the shot, so the fitting
    driver and the benchmark harness share one copy per grid size.
    """
    return _TABLE_CACHE.get(grid)
