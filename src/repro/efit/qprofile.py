"""Safety-factor (q) profile and flux-surface geometry.

The q profile is the headline derived quantity of an equilibrium
reconstruction (it is a required column of the g-EQDSK file).  Two
independent formulations are implemented:

* **line integral** along a traced surface,

  .. math::  q(\\psi) = \\frac{F(\\psi)}{2\\pi} \\oint \\frac{dl}{R\\,|\\nabla\\psi|}

* **toroidal-flux derivative** from mask-based area integrals,

  .. math::  q = \\frac{1}{2\\pi}\\frac{d\\Phi_{tor}}{d\\psi}, \\qquad
             \\Phi_{tor}(\\psi) = \\iint_{S(\\psi)} \\frac{F}{R}\\, dA

Their agreement (a few tenths of a percent on the synthetic shot) is a
strong cross-check of the tracing, interpolation and flux conventions,
and is asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.boundary import BoundaryResult
from repro.efit.contours import FluxSurface, trace_flux_surface
from repro.efit.grid import RZGrid
from repro.errors import BoundaryError

__all__ = ["QProfile", "safety_factor", "toroidal_flux", "q_from_toroidal_flux"]


def _grad_psi_mag(grid: RZGrid, psi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    dpsi_dr = np.gradient(psi, grid.dr, axis=0)
    dpsi_dz = np.gradient(psi, grid.dz, axis=1)
    return dpsi_dr, dpsi_dz


def safety_factor(
    grid: RZGrid,
    psi: np.ndarray,
    boundary: BoundaryResult,
    f_of_psin,
    levels: np.ndarray,
    *,
    n_theta: int = 180,
) -> np.ndarray:
    """q at each ``psiN`` level via the surface line integral.

    ``f_of_psin`` maps psiN -> F = R B_phi (pass a constant via
    ``lambda x: f_vac`` for a vacuum-F approximation).
    """
    levels = np.asarray(levels, dtype=float)
    if np.any(levels <= 0.0) or np.any(levels > 1.0):
        raise BoundaryError("q levels must lie in (0, 1]")
    gr, gz = _grad_psi_mag(grid, psi)
    out = np.empty(levels.shape)
    for idx, level in np.ndenumerate(levels):
        surf = trace_flux_surface(grid, boundary, float(level), n_theta=n_theta)
        rm, zm, dl = surf.midpoints()
        gmag = np.hypot(grid.bilinear(gr, rm, zm), grid.bilinear(gz, rm, zm))
        if np.any(gmag <= 0.0):
            raise BoundaryError(f"vanishing |grad psi| on surface psiN={level}")
        integral = float(np.sum(dl / (rm * gmag)))
        out[idx] = abs(f_of_psin(float(level))) * integral / (2.0 * np.pi)
    return out


def toroidal_flux(
    grid: RZGrid,
    boundary: BoundaryResult,
    f_of_psin,
    level: float,
) -> float:
    """``Phi_tor`` enclosed by the ``psiN = level`` surface (mask integral)."""
    if not (0.0 < level <= 1.0):
        raise BoundaryError("toroidal-flux level must lie in (0, 1]")
    inside = boundary.mask & (boundary.psin < level)
    if not inside.any():
        return 0.0
    f_vals = np.abs(f_of_psin(np.clip(boundary.psin, 0.0, 1.0)))
    integrand = np.where(inside, f_vals / grid.rr, 0.0)
    return float(integrand.sum() * grid.cell_area)


def q_from_toroidal_flux(
    grid: RZGrid,
    boundary: BoundaryResult,
    f_of_psin,
    levels: np.ndarray,
    *,
    dlevel: float = 0.02,
) -> np.ndarray:
    """q via ``(1/2pi) dPhi_tor/dpsi`` with central differences in psiN."""
    levels = np.asarray(levels, dtype=float)
    dpsi_dpsin = boundary.psi_boundary - boundary.psi_axis
    out = np.empty(levels.shape)
    for idx, level in np.ndenumerate(levels):
        lo = max(float(level) - dlevel, 1e-6)
        hi = min(float(level) + dlevel, 1.0)
        phi_lo = toroidal_flux(grid, boundary, f_of_psin, lo)
        phi_hi = toroidal_flux(grid, boundary, f_of_psin, hi)
        dphi_dpsin = (phi_hi - phi_lo) / (hi - lo)
        out[idx] = abs(dphi_dpsin / dpsi_dpsin) / (2.0 * np.pi)
    return out


@dataclass(frozen=True)
class QProfile:
    """q and surface geometry on a psiN mesh, ready for the g-file."""

    levels: np.ndarray
    q: np.ndarray
    surfaces: tuple[FluxSurface, ...]

    @property
    def q95(self) -> float:
        """q at psiN = 0.95 (the standard operational figure)."""
        return float(np.interp(0.95, self.levels, self.q))

    @classmethod
    def compute(
        cls,
        grid: RZGrid,
        psi: np.ndarray,
        boundary: BoundaryResult,
        f_of_psin,
        *,
        n_levels: int = 32,
        n_theta: int = 180,
    ) -> "QProfile":
        """Trace ``n_levels`` surfaces from near-axis to the edge.

        Levels start at a small positive psiN (the axis itself is a point;
        q there is conventionally extrapolated) and end slightly inside 1
        so limiter/X-point corners do not break the star-shape assumption.
        """
        levels = np.linspace(0.05, 0.98, n_levels)
        surfaces = tuple(
            trace_flux_surface(grid, boundary, float(lv), n_theta=n_theta)
            for lv in levels
        )
        q = safety_factor(grid, psi, boundary, f_of_psin, levels, n_theta=n_theta)
        return cls(levels=levels, q=q, surfaces=surfaces)

    def on_uniform_grid(self, n: int) -> np.ndarray:
        """q interpolated to EFIT's uniform psiN mesh of ``n`` points,
        with flat extrapolation to the axis and linear to the edge."""
        x = np.linspace(0.0, 1.0, n)
        return np.interp(x, self.levels, self.q)
