"""Structured representations of the edge-flux operator.

The dense edge operator of :func:`repro.efit.pflux.edge_flux_operator` is
an ``(n_edge, nw*nh)`` matrix whose storage and GEMM cost grow O(N^3) —
541 MB and ~50 ms per apply at 257x257.  The Green table it is built from
has exploitable structure (paper Figs. 2/3):

* **Vertical edges are symmetric Toeplitz.**  Because the Z mesh is
  uniform, ``gpc[i_b, dj, ii]`` depends on Z only through ``|j - jj|``,
  so for a fixed source column ``ii`` the left/right edge blocks are
  symmetric Toeplitz in ``(j, jj)``.  Each embeds exactly in a real
  circulant of any length ``m >= 2*nh - 1`` (we pick the next
  FFT-friendly composite), whose eigenvalues are **real** because the
  embedding is even-symmetric — the whole vertical contraction becomes
  one batched real FFT, a small spectral product and one inverse FFT.

* **Horizontal edges are low-rank in the far field.**  The per-offset
  slices ``A_d = gpc[1:-1, d, :]`` are smooth filament couplings; for
  large ``|dz| = d*dz`` they compress to rank ``r_d << nw`` by truncated
  SVD.  Near-field slices (small ``d``) stay dense; the rest are packed
  into rank-sorted buckets applied as batched GEMMs.  The truncation
  threshold ``tau = tol * sigma_ref / sqrt(nh)`` bounds the spectral
  error of the *summed* operator by ``tol * sigma_ref``.

Both structured forms, the exact dense matrix, and fp32 variants that
re-apply the fp64-computed representation residual (so the input's fp32
rounding cancels and only factor-storage error remains) live behind the
:class:`EdgeOperator` protocol that ``EfitSolver``/``BatchFitEngine``/
``ParallelFitEngine`` select with their ``boundary_method`` kwarg.

Every structured build first runs :func:`validate_edge_structure`, which
spot-checks the translation-invariance assumption against direct Green
function evaluations and fails loudly — naming the ``dense`` fallback —
if a future machine/grid change (a nonuniform Z mesh, vessel terms baked
into the table) breaks it.
"""

from __future__ import annotations

import abc
from collections import OrderedDict

import numpy as np
import scipy.fft as sfft

from repro.efit.grid import RZGrid
from repro.efit.tables import BoundaryGreensTables
from repro.errors import GridError, OperatorError, OperatorStructureError

__all__ = [
    "EDGE_METHODS",
    "EdgeOperator",
    "DenseEdgeOperator",
    "ToeplitzFFTEdgeOperator",
    "LowRankEdgeOperator",
    "build_edge_operator",
    "cached_edge_operator",
    "seed_edge_operator",
    "drop_edge_operator",
    "edge_operator_from_arrays",
    "validate_edge_structure",
]

#: Every ``boundary_method`` value the solvers accept. ``dense`` is the
#: default and the ground truth; ``-fp32`` variants store their factors in
#: single precision and refine with a second pass on the split residual.
EDGE_METHODS = ("dense", "toeplitz", "lowrank", "toeplitz-fp32", "lowrank-fp32")

_EPS32 = float(np.finfo(np.float32).eps)
_EPS64 = float(np.finfo(np.float64).eps)

#: Offsets whose truncated rank exceeds this fraction of full rank are
#: cheaper kept dense (U+V storage would exceed the slice itself).
_DENSE_RANK_FRACTION = 0.5

#: Bucket packing: grow a rank-sorted bucket while zero-padding waste
#: stays under this factor (small buckets always grow — launch overhead
#: dominates padding there).
_BUCKET_WASTE = 1.3
_BUCKET_MIN = 4

#: Z-offset chunk length of the fp32 exact horizontal apply: bounds each
#: sgemm reduction to ``chunk * nw`` terms before the fp64 accumulate.
_FP32_CHUNK = 8


def _is_fp32(method: str) -> bool:
    return method.endswith("-fp32")


def validate_edge_structure(
    tables: BoundaryGreensTables,
    *,
    samples: int = 128,
    rtol: float = 1e-9,
    seed: int = 0,
) -> float:
    """Spot-check the z-translation-invariance assumption of ``gridpc``.

    Samples random (boundary column, edge row, source node) triples and
    compares the tabulated ``gpc[i_b, |j - jj|, ii]`` against a direct
    Green-function evaluation at the *physical* node coordinates.  On a
    uniform Z mesh the two agree to roundoff; a nonuniform mesh, a wrong
    ``dz``, or extra physics folded into the table breaks the identity.

    Returns the worst relative deviation seen.  Raises
    :class:`~repro.errors.OperatorStructureError` when it exceeds
    ``rtol`` — structured operators would silently corrupt the boundary
    flux, so the caller must fall back to ``boundary_method='dense'``.
    """
    from repro.efit.greens import greens_psi

    grid = tables.grid
    nw, nh = grid.nw, grid.nh
    rng = np.random.default_rng(seed)
    i_b = rng.integers(0, nw, size=samples)
    j = rng.integers(0, nh, size=samples)
    ii = rng.integers(0, nw, size=samples)
    jj = rng.integers(0, nh, size=samples)
    # The coincident self term is regularised in the table, not a Green
    # value; skip those pairs.
    keep = ~((i_b == ii) & (j == jj))
    i_b, j, ii, jj = i_b[keep], j[keep], ii[keep], jj[keep]
    direct = greens_psi(grid.r[i_b], grid.z[j], grid.r[ii], grid.z[jj])
    tabulated = tables.gpc[i_b, np.abs(j - jj), ii]
    scale = np.maximum(np.abs(direct), np.abs(direct).max() * 1e-6)
    worst = float(np.max(np.abs(direct - tabulated) / scale))
    if worst > rtol:
        bad = int(np.sum(np.abs(direct - tabulated) / scale > rtol))
        raise OperatorStructureError(
            f"boundary Green table violates the z-translation-invariance "
            f"assumption: gpc[i_b, |j-jj|, ii] deviates from the direct "
            f"Green function at {bad} of {len(direct)} sampled node pairs "
            f"(worst relative deviation {worst:.3e} > rtol {rtol:.1e}). "
            f"Structured edge operators (boundary_method='toeplitz'/"
            f"'lowrank') assume a uniform Z mesh and would silently "
            f"corrupt the boundary flux on this grid — fall back to "
            f"boundary_method='dense', which makes no structural "
            f"assumption."
        )
    return worst


class EdgeOperator(abc.ABC):
    """Protocol every edge-flux representation implements.

    ``apply`` reproduces ``E @ pcurr_flat`` of the dense operator — the
    paper's ``psi = -sum(G * pcurr)`` boundary sums in
    :func:`repro.efit.pflux.edge_node_indices` row order — for a single
    flat current vector ``(nw*nh,)`` or a column batch ``(nw*nh, B)``.
    """

    #: one of :data:`EDGE_METHODS`, set by subclasses.
    method: str

    def __init__(self, grid: RZGrid) -> None:
        self.grid = grid

    @property
    def n_edge(self) -> int:
        return self.grid.n_boundary

    @property
    def n_grid(self) -> int:
        return self.grid.size

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Bytes of operator storage (beyond the shared Green table)."""

    @property
    def variant_tag(self) -> str:
        """Method + rank/precision discriminator (no grid identity)."""
        return self.method

    @property
    def content_key(self) -> str:
        """Full content identity: grid hash + method + rank/precision tag.

        Two processes derive equal keys iff their operators are
        interchangeable — the arena layer and the disk cache key on it.
        """
        return f"{self.grid.geometry_hash()}:{self.variant_tag}"

    @abc.abstractmethod
    def apply(self, pcurr_flat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Edge flux of one current vector or a column batch."""

    @abc.abstractmethod
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat named-array form (shared-memory segments, ``.npz`` files).

        :func:`edge_operator_from_arrays` inverts it; the round trip
        reproduces ``apply`` bit-for-bit.
        """

    def error_bound(self, x_norm: float = 1.0) -> float:
        """Estimated max-abs ``apply`` error vs the dense fp64 apply for
        inputs with ``||x||_2 <= x_norm``.  Zero for the dense operator;
        structured bounds combine the SVD truncation tail with a
        roundoff allowance (heuristic constants, validated by the
        property tests with wide margin)."""
        return 0.0

    # -- shared input plumbing ------------------------------------------------
    def _coerce(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            if x.shape[0] != self.n_grid:
                raise GridError(f"pcurr length {x.shape[0]} != grid size {self.n_grid}")
            return x[:, None], True
        if x.ndim == 2:
            if x.shape[0] != self.n_grid:
                raise GridError(f"pcurr rows {x.shape[0]} != grid size {self.n_grid}")
            return x, False
        raise GridError(f"pcurr must be 1-D or 2-D, got shape {x.shape}")

    def _finish(
        self, result: np.ndarray, single: bool, out: np.ndarray | None
    ) -> np.ndarray:
        if single:
            result = result[:, 0]
        if out is None:
            return result
        if out.shape != result.shape:
            raise GridError(f"out shape {out.shape} != {result.shape}")
        out[...] = result
        return out


class DenseEdgeOperator(EdgeOperator):
    """The exact dense matrix — ground truth and default.

    ``apply`` is the same single GEMM as
    :func:`repro.efit.pflux.boundary_flux_operator`, bit-identical by
    construction (goldens on the default path must not move).
    """

    method = "dense"

    def __init__(self, grid: RZGrid, matrix: np.ndarray) -> None:
        super().__init__(grid)
        expected = (grid.n_boundary, grid.size)
        if matrix.shape != expected:
            raise OperatorError(f"dense operator shape {matrix.shape} != {expected}")
        self.matrix = matrix

    @classmethod
    def from_tables(cls, tables: BoundaryGreensTables) -> "DenseEdgeOperator":
        from repro.efit.pflux import edge_flux_operator

        return cls(tables.grid, edge_flux_operator(tables))

    @property
    def nbytes(self) -> int:
        return int(self.matrix.nbytes)

    def apply(self, pcurr_flat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        # No coercion dance: keep the exact call the batch engine made
        # before operators existed, so the default path stays bitwise.
        if pcurr_flat.shape[0] != self.n_grid:
            raise GridError(
                f"pcurr length {pcurr_flat.shape[0]} != operator columns {self.n_grid}"
            )
        expected = (self.n_edge,) + pcurr_flat.shape[1:]
        if out is not None and out.shape != expected:
            raise GridError(f"out shape {out.shape} != {expected}")
        return np.matmul(self.matrix, pcurr_flat, out=out)

    def to_arrays(self) -> dict[str, np.ndarray]:
        return {"matrix": self.matrix}


class _VerticalSpectra:
    """Real circulant spectra of the two vertical-edge Toeplitz blocks."""

    def __init__(self, spectra: np.ndarray, m: int, nh: int) -> None:
        self.spectra = spectra  # (2, m//2+1, nw) real
        self.m = m
        self.nh = nh

    @classmethod
    def build(cls, tables: BoundaryGreensTables, dtype=np.float64) -> "_VerticalSpectra":
        nw, nh = tables.grid.nw, tables.grid.nh
        # Any m >= 2*nh - 1 embeds the Toeplitz block exactly; pick the
        # next FFT-friendly composite (2*nh itself can be catastrophic:
        # 514 = 2*257 forces an O(n log n) Bluestein fallback ~8x slower
        # than the 540 = 2^2*3^3*5 plan).
        m = sfft.next_fast_len(2 * nh - 1, real=True)
        spectra = np.empty((2, m // 2 + 1, nw), dtype=dtype)
        c = np.zeros((m, nw))
        for e, i_b in enumerate((0, nw - 1)):
            t = tables.gpc[i_b]  # (nh, nw): first Toeplitz column per source column
            c[:nh] = t
            c[m - nh + 1 :] = t[1:][::-1]
            # Even symmetry of the embedding makes the spectrum real;
            # the imaginary residue is pure roundoff.
            spectra[e] = sfft.rfft(c, axis=0).real.astype(dtype, copy=False)
        return cls(spectra, m, nh)

    @property
    def nbytes(self) -> int:
        return int(self.spectra.nbytes)

    def apply(self, p3: np.ndarray) -> np.ndarray:
        """``(nw, nh, B)`` currents -> ``(2, nh, B)`` left/right edge sums
        (without the operator's leading minus sign)."""
        x_hat = sfft.rfft(p3, n=self.m, axis=1)  # (nw, m//2+1, B)
        y_hat = np.einsum("efi,ifb->efb", self.spectra, x_hat)
        return sfft.irfft(y_hat, n=self.m, axis=1)[:, : self.nh, :]


def _horizontal_rhs(p3: np.ndarray, dtype) -> np.ndarray:
    """Stack bottom/top right-hand sides: ``q[d, ii, :B]`` feeds the
    bottom edge (offset ``d`` is the source row), ``q[d, ii, B:]`` the
    top edge (source rows reversed) — both edges then ride one GEMM."""
    nw, nh, nb = p3.shape
    q = np.empty((nh, nw, 2 * nb), dtype=dtype)
    q[:, :, :nb] = p3.transpose(1, 0, 2)
    q[:, :, nb:] = p3[:, ::-1, :].transpose(1, 0, 2)
    return q


class _StructuredEdgeOperator(EdgeOperator):
    """Shared apply plumbing: FFT vertical edges + pluggable horizontal."""

    def __init__(self, grid: RZGrid, vertical: _VerticalSpectra) -> None:
        super().__init__(grid)
        self._vertical = vertical

    def apply(self, pcurr_flat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, single = self._coerce(pcurr_flat)
        if _is_fp32(self.method):
            x32 = x.astype(np.float32)
            # The fp64-computed split residual re-applied in fp32 cancels
            # the input's fp32 rounding; what remains is factor-storage
            # and accumulation error, both bounded by the property tests.
            dx32 = (x - x32.astype(np.float64)).astype(np.float32)
            result = self._apply_once(x32)
            result += self._apply_once(dx32)
        else:
            result = self._apply_once(x)
        return self._finish(result, single, out)

    def _apply_once(self, x: np.ndarray) -> np.ndarray:
        grid = self.grid
        nw, nh = grid.nw, grid.nh
        nb = x.shape[1]
        p3 = x.reshape(nw, nh, nb)
        vert = self._vertical.apply(p3)  # (2, nh, B)
        q = _horizontal_rhs(p3, x.dtype)
        bt = self._apply_horizontal(q, nb)  # (nw-2, 2B) float64
        result = np.empty((self.n_edge, nb))
        result[:nh] = -vert[0]
        result[nh : 2 * nh] = -vert[1]
        result[2 * nh : 2 * nh + nw - 2] = -bt[:, :nb]
        result[2 * nh + nw - 2 :] = -bt[:, nb:]
        return result

    def _apply_horizontal(self, q: np.ndarray, nb: int) -> np.ndarray:
        raise NotImplementedError


class ToeplitzFFTEdgeOperator(_StructuredEdgeOperator):
    """FFT vertical edges + the exact per-offset GEMM horizontal edges.

    The fp64 form stores only the circulant spectra and *aliases* the
    Green table for the horizontal contraction — the 541 MB dense
    operator at 257x257 shrinks to a 2.2 MB spectrum block.  The fp32
    form keeps a private single-precision copy of the horizontal table,
    chunked along the Z offset so each sgemm reduction spans only
    ``chunk * nw`` terms before accumulating in fp64.
    """

    def __init__(
        self,
        grid: RZGrid,
        vertical: _VerticalSpectra,
        *,
        horizontal: np.ndarray | None = None,
        horizontal32: np.ndarray | None = None,
        chunk: int = _FP32_CHUNK,
    ) -> None:
        super().__init__(grid, vertical)
        self._chunk = chunk
        if horizontal32 is not None:
            self.method = "toeplitz-fp32"
            self._horizontal = None
            self._horizontal32 = horizontal32  # (n_chunks, nw-2, chunk*nw)
        elif horizontal is not None:
            self.method = "toeplitz"
            self._horizontal = horizontal  # (nw-2, nh*nw) view of gpc[1:-1]
            self._horizontal32 = None
        else:
            raise OperatorError("toeplitz operator needs a horizontal table")

    @classmethod
    def from_tables(
        cls, tables: BoundaryGreensTables, *, fp32: bool = False, chunk: int = _FP32_CHUNK
    ) -> "ToeplitzFFTEdgeOperator":
        grid = tables.grid
        nw, nh = grid.nw, grid.nh
        if fp32:
            vertical = _VerticalSpectra.build(tables, dtype=np.float32)
            n_chunks = -(-nh // chunk)
            h32 = np.zeros((n_chunks, nw - 2, chunk * nw), dtype=np.float32)
            flat = tables.gpc[1:-1].reshape(nw - 2, nh * nw)
            for k in range(n_chunks):
                lo, hi = k * chunk * nw, min((k + 1) * chunk, nh) * nw
                h32[k, :, : hi - lo] = flat[:, lo:hi]
            return cls(grid, vertical, horizontal32=h32, chunk=chunk)
        vertical = _VerticalSpectra.build(tables)
        return cls(grid, vertical, horizontal=tables.gpc[1:-1].reshape(nw - 2, nh * nw))

    @property
    def nbytes(self) -> int:
        n = self._vertical.nbytes
        if self._horizontal32 is not None:
            n += int(self._horizontal32.nbytes)
        return n

    @property
    def variant_tag(self) -> str:
        return f"{self.method}-m{self._vertical.m}"

    def error_bound(self, x_norm: float = 1.0) -> float:
        scale = float(np.abs(self._vertical.spectra).max()) * np.sqrt(self.n_grid)
        eps = _EPS32 if _is_fp32(self.method) else _EPS64
        return 64.0 * eps * scale * x_norm

    def _apply_horizontal(self, q: np.ndarray, nb: int) -> np.ndarray:
        nw, nh = self.grid.nw, self.grid.nh
        if self._horizontal is not None:
            return self._horizontal @ q.reshape(nh * nw, 2 * nb)
        h32 = self._horizontal32
        acc = np.zeros((nw - 2, 2 * nb))
        flat = q.reshape(nh * nw, 2 * nb)
        for k in range(h32.shape[0]):
            lo = k * self._chunk * nw
            hi = min(lo + self._chunk * nw, nh * nw)
            acc += h32[k, :, : hi - lo] @ flat[lo:hi]
        return acc

    def to_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            "vert_spectra": self._vertical.spectra,
            "meta_i8": np.array([self._vertical.m, self._chunk], dtype=np.int64),
        }
        if self._horizontal32 is not None:
            arrays["horiz_fp32"] = self._horizontal32
        return arrays

    @classmethod
    def from_arrays(
        cls,
        grid: RZGrid,
        arrays: dict[str, np.ndarray],
        *,
        gpc: np.ndarray | None = None,
    ) -> "ToeplitzFFTEdgeOperator":
        m, chunk = (int(v) for v in arrays["meta_i8"])
        vertical = _VerticalSpectra(arrays["vert_spectra"], m, grid.nh)
        if "horiz_fp32" in arrays:
            return cls(grid, vertical, horizontal32=arrays["horiz_fp32"], chunk=chunk)
        if gpc is None:
            raise OperatorError(
                "fp64 toeplitz operator aliases the Green table: pass gpc="
            )
        nw, nh = grid.nw, grid.nh
        return cls(grid, vertical, horizontal=gpc[1:-1].reshape(nw - 2, nh * nw))


class LowRankEdgeOperator(_StructuredEdgeOperator):
    """FFT vertical edges + truncated-SVD horizontal edges.

    Per-offset slices whose rank exceeds ``nw/2`` (the near field) stay
    dense in one gathered block; the rest are zero-padded into
    rank-sorted buckets so the whole far field applies as a handful of
    batched GEMMs.  This is the method that wins at large N: ~19x less
    memory and >5x less apply time than the dense GEMM at 257x257.
    """

    def __init__(
        self,
        grid: RZGrid,
        vertical: _VerticalSpectra,
        dense_idx: np.ndarray,
        dense_block: np.ndarray,
        buckets: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
        *,
        tol: float,
        sigma_ref: float,
        fp32: bool = False,
    ) -> None:
        super().__init__(grid, vertical)
        self.method = "lowrank-fp32" if fp32 else "lowrank"
        self._dense_idx = dense_idx
        self._dense_block = dense_block
        self._buckets = buckets  # [(offset indices, U (k,nw-2,r), W (k,r,nw))]
        self._tol = tol
        self._sigma_ref = sigma_ref

    @classmethod
    def from_tables(
        cls, tables: BoundaryGreensTables, *, tol: float = 1e-12, fp32: bool = False
    ) -> "LowRankEdgeOperator":
        grid = tables.grid
        nw, nh = grid.nw, grid.nh
        dtype = np.float32 if fp32 else np.float64
        slices = tables.gpc[1:-1]  # (nw-2, nh, nw): axes (edge row, offset, source col)

        factors: list[tuple[np.ndarray, np.ndarray]] = []
        sigmas = []
        for d in range(nh):
            u, s, vt = np.linalg.svd(slices[:, d, :], full_matrices=False)
            factors.append((u, s[:, None] * vt))
            sigmas.append(s)
        sigma_ref = max(float(s[0]) for s in sigmas)
        # Truncating each of the nh offsets at tau keeps the 2-norm error
        # of the summed operator under tol * sigma_ref (triangle
        # inequality over sqrt(nh) incoherent terms).
        tau = tol * sigma_ref / np.sqrt(nh)
        ranks = np.array([max(1, int(np.sum(s > tau))) for s in sigmas])

        dense_idx = np.flatnonzero(ranks >= _DENSE_RANK_FRACTION * (nw - 2))
        dense_block = (
            slices[:, dense_idx, :].reshape(nw - 2, dense_idx.size * nw).astype(dtype)
        )

        lr = sorted(np.setdiff1d(np.arange(nh), dense_idx), key=lambda d: -ranks[d])
        groups: list[list[int]] = []
        for d in lr:
            if groups:
                cur = groups[-1]
                padded = int(ranks[cur[0]]) * (len(cur) + 1)
                actual = sum(int(ranks[i]) for i in cur) + int(ranks[d])
                if len(cur) < _BUCKET_MIN or padded <= _BUCKET_WASTE * actual:
                    cur.append(d)
                    continue
            groups.append([int(d)])

        buckets = []
        for group in groups:
            r_max = int(ranks[group[0]])
            u_pack = np.zeros((len(group), nw - 2, r_max), dtype=dtype)
            w_pack = np.zeros((len(group), r_max, nw), dtype=dtype)
            for k, d in enumerate(group):
                r = int(ranks[d])
                u, w = factors[d]
                u_pack[k, :, :r] = u[:, :r]
                w_pack[k, :r, :] = w[:r]
            buckets.append((np.asarray(group, dtype=np.int64), u_pack, w_pack))

        vertical = _VerticalSpectra.build(tables, dtype=dtype)
        return cls(
            grid,
            vertical,
            dense_idx,
            dense_block,
            buckets,
            tol=tol,
            sigma_ref=sigma_ref,
            fp32=fp32,
        )

    @property
    def total_rank(self) -> int:
        return int(sum(u.shape[0] * u.shape[2] for _, u, _ in self._buckets))

    @property
    def nbytes(self) -> int:
        n = self._vertical.nbytes + int(self._dense_block.nbytes)
        for _, u, w in self._buckets:
            n += int(u.nbytes) + int(w.nbytes)
        return n

    @property
    def variant_tag(self) -> str:
        return f"{self.method}-tol{self._tol:g}-r{self.total_rank}"

    def error_bound(self, x_norm: float = 1.0) -> float:
        truncation = self._tol * self._sigma_ref
        eps = _EPS32 if _is_fp32(self.method) else _EPS64
        roundoff = 64.0 * eps * self._sigma_ref * np.sqrt(self.n_grid)
        return (truncation + roundoff) * x_norm

    def _apply_horizontal(self, q: np.ndarray, nb: int) -> np.ndarray:
        nw = self.grid.nw
        fp32 = _is_fp32(self.method)
        qd = q[self._dense_idx].reshape(self._dense_idx.size * nw, 2 * nb)
        acc = (self._dense_block @ qd).astype(np.float64, copy=False)
        for idx, u_pack, w_pack in self._buckets:
            mid = np.matmul(w_pack, q[idx])  # (k, r, 2B)
            contrib = np.matmul(u_pack, mid)  # (k, nw-2, 2B)
            # Bucket dots are short (nw then r terms); the cross-offset
            # reduction happens here in fp64 either way.
            acc += contrib.sum(axis=0, dtype=np.float64) if fp32 else contrib.sum(axis=0)
        return acc

    def to_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            "vert_spectra": self._vertical.spectra,
            "dense_idx": self._dense_idx.astype(np.int64),
            "dense_block": self._dense_block,
            "meta_i8": np.array(
                [self._vertical.m, len(self._buckets), _is_fp32(self.method)],
                dtype=np.int64,
            ),
            "meta_f8": np.array([self._tol, self._sigma_ref]),
        }
        for b, (idx, u_pack, w_pack) in enumerate(self._buckets):
            arrays[f"bucket{b:02d}_idx"] = idx
            arrays[f"bucket{b:02d}_u"] = u_pack
            arrays[f"bucket{b:02d}_w"] = w_pack
        return arrays

    @classmethod
    def from_arrays(
        cls, grid: RZGrid, arrays: dict[str, np.ndarray]
    ) -> "LowRankEdgeOperator":
        m, n_buckets, fp32 = (int(v) for v in arrays["meta_i8"])
        tol, sigma_ref = (float(v) for v in arrays["meta_f8"])
        buckets = [
            (
                arrays[f"bucket{b:02d}_idx"],
                arrays[f"bucket{b:02d}_u"],
                arrays[f"bucket{b:02d}_w"],
            )
            for b in range(n_buckets)
        ]
        return cls(
            grid,
            _VerticalSpectra(arrays["vert_spectra"], m, grid.nh),
            arrays["dense_idx"],
            arrays["dense_block"],
            buckets,
            tol=tol,
            sigma_ref=sigma_ref,
            fp32=bool(fp32),
        )


def build_edge_operator(
    tables: BoundaryGreensTables,
    method: str = "dense",
    *,
    tol: float = 1e-12,
    validate: bool = True,
) -> EdgeOperator:
    """Build the edge-flux operator for ``tables`` in the given form.

    ``method`` is one of :data:`EDGE_METHODS`.  Structured builds first
    run :func:`validate_edge_structure` (disable with ``validate=False``
    only when the same tables were already validated this process).
    """
    if method not in EDGE_METHODS:
        raise OperatorError(
            f"unknown boundary method {method!r}; choose one of {EDGE_METHODS}"
        )
    if method == "dense":
        return DenseEdgeOperator.from_tables(tables)
    if validate:
        validate_edge_structure(tables)
    if method.startswith("toeplitz"):
        return ToeplitzFFTEdgeOperator.from_tables(tables, fp32=_is_fp32(method))
    return LowRankEdgeOperator.from_tables(tables, tol=tol, fp32=_is_fp32(method))


#: Process-wide operator cache: solvers, the batch engine and the bench
#: harness constructed for the same grid share one compressed operator
#: (mirrors ``cached_boundary_tables`` for the Green table itself).
_OP_CACHE: "OrderedDict[tuple[str, str], EdgeOperator]" = OrderedDict()
_OP_CACHE_MAX = 8


def cached_edge_operator(
    tables: BoundaryGreensTables, method: str, *, tol: float = 1e-12
) -> EdgeOperator:
    """Memoised :func:`build_edge_operator` keyed on grid geometry + method.

    A miss consults the optional on-disk layer
    (:mod:`repro.efit.diskcache`, ``REPRO_TABLE_CACHE_DIR``) before
    paying the per-offset SVD / spectra build, and publishes a fresh
    structured build back to it.
    """
    key = (tables.grid.geometry_hash(), method)
    op = _OP_CACHE.get(key)
    if op is not None:
        _OP_CACHE.move_to_end(key)
        return op
    from repro.efit import diskcache

    op = diskcache.load_edge_operator(tables, method, tol)
    if op is None:
        op = build_edge_operator(tables, method, tol=tol)
        diskcache.store_edge_operator(op, tol)
    _OP_CACHE[key] = op
    while len(_OP_CACHE) > _OP_CACHE_MAX:
        _OP_CACHE.popitem(last=False)
    return op


def seed_edge_operator(op: EdgeOperator) -> None:
    """Install an externally-built operator (e.g. shared-memory backed)
    so later ``cached_edge_operator`` calls resolve to it."""
    _OP_CACHE[(op.grid.geometry_hash(), op.method)] = op


def drop_edge_operator(grid: RZGrid, method: str) -> None:
    """Forget the cached operator for ``(grid, method)`` (no-op when
    absent) — required before its backing shared memory is unlinked."""
    _OP_CACHE.pop((grid.geometry_hash(), method), None)


def edge_operator_from_arrays(
    grid: RZGrid,
    method: str,
    arrays: dict[str, np.ndarray],
    *,
    gpc: np.ndarray | None = None,
) -> EdgeOperator:
    """Rebuild an operator from its :meth:`EdgeOperator.to_arrays` form.

    Fleet workers call this against shared-memory segments; the disk
    cache against ``.npz`` members.  ``gpc`` is required for the fp64
    toeplitz form, which aliases the Green table instead of copying it.
    """
    if method == "dense":
        return DenseEdgeOperator(grid, arrays["matrix"])
    if method.startswith("toeplitz"):
        return ToeplitzFFTEdgeOperator.from_arrays(grid, arrays, gpc=gpc)
    if method.startswith("lowrank"):
        return LowRankEdgeOperator.from_arrays(grid, arrays)
    raise OperatorError(
        f"unknown boundary method {method!r}; choose one of {EDGE_METHODS}"
    )
