"""Finite-difference discretisation of the Grad-Shafranov operator.

``Delta* psi = R d/dR( (1/R) dpsi/dR ) + d^2 psi / dZ^2`` is discretised in
conservative (self-adjoint) form on the uniform grid:

.. math::

    (\\Delta^* \\psi)_{ij} \\approx
      \\frac{R_i}{\\Delta R^2}\\left[
          \\frac{\\psi_{i+1,j} - \\psi_{ij}}{R_{i+1/2}}
        - \\frac{\\psi_{ij} - \\psi_{i-1,j}}{R_{i-1/2}}
      \\right]
      + \\frac{\\psi_{i,j+1} - 2\\psi_{ij} + \\psi_{i,j-1}}{\\Delta Z^2}

which is second-order accurate and annihilates the exact ``Delta*``
null-space elements ``1``, ``Z`` and ``R^2`` to machine precision — a
property the test suite checks.  The same stencil coefficients drive both
the matrix-free :meth:`GradShafranovOperator.apply` (used for residuals)
and the sparse matrix consumed by the direct interior solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.efit.grid import RZGrid
from repro.errors import GridError

__all__ = ["GradShafranovOperator"]


@dataclass(frozen=True)
class GradShafranovOperator:
    """Matrix-free and assembled forms of the discrete ``Delta*``."""

    grid: RZGrid

    # -- stencil coefficients --------------------------------------------------
    @cached_property
    def a_plus(self) -> np.ndarray:
        """East coefficient ``R_i / R_{i+1/2}`` for interior columns, shape (nw-2,)."""
        r = self.grid.r
        ri = r[1:-1]
        return ri / (ri + 0.5 * self.grid.dr)

    @cached_property
    def a_minus(self) -> np.ndarray:
        """West coefficient ``R_i / R_{i-1/2}`` for interior columns, shape (nw-2,)."""
        r = self.grid.r
        ri = r[1:-1]
        return ri / (ri - 0.5 * self.grid.dr)

    # -- matrix-free application ------------------------------------------------
    def apply(self, psi: np.ndarray) -> np.ndarray:
        """Apply ``Delta*`` to a full ``(nw, nh)`` field.

        Returns an ``(nw, nh)`` array whose interior holds the stencil value
        and whose edge ring is zero (the operator needs both neighbours).
        """
        grid = self.grid
        psi = np.asarray(psi, dtype=float)
        if psi.shape != grid.shape:
            raise GridError(f"field shape {psi.shape} != grid shape {grid.shape}")
        out = np.zeros_like(psi)
        inner = psi[1:-1, 1:-1]
        east = psi[2:, 1:-1]
        west = psi[:-2, 1:-1]
        north = psi[1:-1, 2:]
        south = psi[1:-1, :-2]
        ap = self.a_plus[:, None]
        am = self.a_minus[:, None]
        dr2 = grid.dr**2
        dz2 = grid.dz**2
        out[1:-1, 1:-1] = (ap * (east - inner) - am * (inner - west)) / dr2 + (
            north - 2.0 * inner + south
        ) / dz2
        return out

    def residual(self, psi: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Interior residual ``Delta* psi - rhs`` (edge ring zero)."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != self.grid.shape:
            raise GridError(f"rhs shape {rhs.shape} != grid shape {self.grid.shape}")
        res = self.apply(psi)
        res[1:-1, 1:-1] -= rhs[1:-1, 1:-1]
        return res

    # -- assembled interior matrix ----------------------------------------------
    @cached_property
    def interior_matrix(self) -> sp.csc_matrix:
        """Sparse ``Delta*`` over interior unknowns with Dirichlet edges.

        Unknowns are ordered with the grid's Fortran-style flattening
        restricted to the interior: ``k = (i-1)*(nh-2) + (j-1)``.
        """
        grid = self.grid
        ni = grid.nw - 2
        nj = grid.nh - 2
        n = ni * nj
        dr2 = grid.dr**2
        dz2 = grid.dz**2
        ap = self.a_plus
        am = self.a_minus

        diag = np.empty(n)
        east = np.zeros(n)
        west = np.zeros(n)
        north = np.zeros(n)
        south = np.zeros(n)
        for ii in range(ni):
            s = slice(ii * nj, (ii + 1) * nj)
            diag[s] = -(ap[ii] + am[ii]) / dr2 - 2.0 / dz2
            east[s] = ap[ii] / dr2
            west[s] = am[ii] / dr2
            north[s] = 1.0 / dz2
            south[s] = 1.0 / dz2
        # Zero couplings that would cross the Dirichlet edge.
        north_off = north.copy()
        south_off = south.copy()
        north_off[nj - 1 :: nj] = 0.0  # top interior row has no interior north
        south_off[0::nj] = 0.0
        mat = sp.diags(
            [diag, east[: n - nj], west[nj:], north_off[: n - 1], south_off[1:]],
            [0, nj, -nj, 1, -1],
            shape=(n, n),
            format="csc",
        )
        return mat

    def dirichlet_rhs_correction(self, psi_boundary: np.ndarray) -> np.ndarray:
        """Move known edge values to the right-hand side of the interior system.

        ``psi_boundary`` is a full ``(nw, nh)`` field whose edge ring holds
        the Dirichlet data (interior values are ignored).  Returns the
        flattened interior correction to *subtract* from the RHS vector.
        """
        grid = self.grid
        psi_boundary = np.asarray(psi_boundary, dtype=float)
        if psi_boundary.shape != grid.shape:
            raise GridError("boundary field shape mismatch")
        ni = grid.nw - 2
        nj = grid.nh - 2
        dr2 = grid.dr**2
        dz2 = grid.dz**2
        corr = np.zeros((ni, nj))
        corr[0, :] += self.a_minus[0] / dr2 * psi_boundary[0, 1:-1]
        corr[-1, :] += self.a_plus[-1] / dr2 * psi_boundary[-1, 1:-1]
        corr[:, 0] += psi_boundary[1:-1, 0] / dz2
        corr[:, -1] += psi_boundary[1:-1, -1] / dz2
        return corr.reshape(ni * nj)

    def dirichlet_rhs_correction_batch(self, psi_boundary: np.ndarray) -> np.ndarray:
        """Batched :meth:`dirichlet_rhs_correction` over stacked slices.

        ``psi_boundary`` is ``(B, nw, nh)``; returns the ``(B, ni, nj)``
        interior corrections.  The arithmetic is elementwise-identical to
        the single-slice path, so batched and serial solves agree bitwise.
        """
        grid = self.grid
        psi_boundary = np.asarray(psi_boundary, dtype=float)
        if psi_boundary.ndim != 3 or psi_boundary.shape[1:] != grid.shape:
            raise GridError("batched boundary field shape mismatch")
        ni = grid.nw - 2
        nj = grid.nh - 2
        dr2 = grid.dr**2
        dz2 = grid.dz**2
        corr = np.zeros((psi_boundary.shape[0], ni, nj))
        corr[:, 0, :] += self.a_minus[0] / dr2 * psi_boundary[:, 0, 1:-1]
        corr[:, -1, :] += self.a_plus[-1] / dr2 * psi_boundary[:, -1, 1:-1]
        corr[:, :, 0] += psi_boundary[:, 1:-1, 0] / dz2
        corr[:, :, -1] += psi_boundary[:, 1:-1, -1] / dz2
        return corr
