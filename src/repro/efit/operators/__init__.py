"""Structured operators on the computational grid.

Two families live here:

* :mod:`repro.efit.operators.gs` — the finite-difference Grad-Shafranov
  ``Delta*`` stencil (matrix-free apply, assembled interior matrix,
  Dirichlet corrections).
* :mod:`repro.efit.operators.edge` — representations of the dense
  edge-flux operator of :func:`repro.efit.pflux.edge_flux_operator`:
  the exact dense matrix, a block-Toeplitz/FFT apply, a truncated-SVD
  low-rank apply, and fp32-with-fp64-refinement variants, all behind
  the common :class:`EdgeOperator` protocol selected by the solvers'
  ``boundary_method`` kwarg.
"""

from repro.efit.operators.edge import (
    EDGE_METHODS,
    DenseEdgeOperator,
    EdgeOperator,
    LowRankEdgeOperator,
    ToeplitzFFTEdgeOperator,
    build_edge_operator,
    cached_edge_operator,
    drop_edge_operator,
    edge_operator_from_arrays,
    seed_edge_operator,
    validate_edge_structure,
)
from repro.efit.operators.gs import GradShafranovOperator

__all__ = [
    "GradShafranovOperator",
    "EdgeOperator",
    "EDGE_METHODS",
    "DenseEdgeOperator",
    "ToeplitzFFTEdgeOperator",
    "LowRankEdgeOperator",
    "build_edge_operator",
    "cached_edge_operator",
    "seed_edge_operator",
    "drop_edge_operator",
    "edge_operator_from_arrays",
    "validate_edge_structure",
]
