"""Magnetic axis and plasma-boundary location (the ``steps_`` subroutine).

After every ``pflux_`` solve, EFIT must (1) find the magnetic axis — the
extremum of ``psi`` inside the limiter, (2) decide the boundary flux
``psi_b`` — either the flux at the limiter contact point or at an X-point
(saddle of ``psi``), whichever bounds the smaller plasma, (3) build the
normalised flux ``psiN = (psi - psi_axis)/(psi_b - psi_axis)`` and the
in-plasma mask used by ``current_``.

The mask keeps only the cells *connected to the axis* through ``psiN < 1``
territory, excluding private-flux regions below an X-point, via a
connected-component labelling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.efit.grid import RZGrid
from repro.efit.machine import Limiter
from repro.errors import BoundaryError

__all__ = ["BoundaryResult", "find_axis", "find_xpoints", "find_boundary"]


@dataclass(frozen=True)
class BoundaryResult:
    """Everything ``steps_`` produces for one Picard iterate."""

    psi_axis: float
    r_axis: float
    z_axis: float
    psi_boundary: float
    boundary_type: str  # "limiter" or "xpoint"
    psin: np.ndarray  # (nw, nh) normalised flux
    mask: np.ndarray  # (nw, nh) bool, True inside the plasma
    r_xpoint: float | None = None
    z_xpoint: float | None = None

    @property
    def plasma_volume_cells(self) -> int:
        return int(self.mask.sum())


def _quadratic_refine(grid: RZGrid, field: np.ndarray, i: int, j: int) -> tuple[float, float, float]:
    """Refine a grid extremum with a 2-D quadratic fit on the 3x3 stencil.

    Returns ``(r, z, value)``; falls back to the node itself when the
    stencil is degenerate or the correction leaves the cell.
    """
    f = field
    fx = (f[i + 1, j] - f[i - 1, j]) / 2.0
    fy = (f[i, j + 1] - f[i, j - 1]) / 2.0
    fxx = f[i + 1, j] - 2.0 * f[i, j] + f[i - 1, j]
    fyy = f[i, j + 1] - 2.0 * f[i, j] + f[i, j - 1]
    fxy = (f[i + 1, j + 1] - f[i + 1, j - 1] - f[i - 1, j + 1] + f[i - 1, j - 1]) / 4.0
    det = fxx * fyy - fxy * fxy
    if abs(det) < 1e-300:
        return float(grid.r[i]), float(grid.z[j]), float(f[i, j])
    dx = -(fyy * fx - fxy * fy) / det
    dy = -(fxx * fy - fxy * fx) / det
    if abs(dx) > 1.0 or abs(dy) > 1.0:
        return float(grid.r[i]), float(grid.z[j]), float(f[i, j])
    value = f[i, j] + 0.5 * (fx * dx + fy * dy)
    return (
        float(grid.r[i] + dx * grid.dr),
        float(grid.z[j] + dy * grid.dz),
        float(value),
    )


def find_axis(
    grid: RZGrid,
    psi: np.ndarray,
    limiter: Limiter,
    sign: int = 1,
    *,
    inside: np.ndarray | None = None,
) -> tuple[float, float, float]:
    """Locate the magnetic axis: the extremum of ``sign * psi`` inside the
    limiter.  Returns ``(r_axis, z_axis, psi_axis)``.

    ``inside`` optionally supplies the precomputed
    ``limiter.contains(grid.rr, grid.zz)`` mask — it depends only on the
    machine and the grid, and recomputing the point-in-polygon test every
    Picard iterate dominates ``steps_`` time on small grids.
    """
    if sign not in (1, -1):
        raise BoundaryError("axis sign must be +1 or -1")
    if inside is None:
        inside = limiter.contains(grid.rr, grid.zz)
    if not inside.any():
        raise BoundaryError("limiter does not intersect the computational grid")
    work = np.where(inside, sign * psi, -np.inf)
    # Exclude the outer ring so the quadratic refinement has a full stencil.
    work[0, :] = work[-1, :] = -np.inf
    work[:, 0] = work[:, -1] = -np.inf
    i, j = np.unravel_index(int(np.argmax(work)), work.shape)
    if not np.isfinite(work[i, j]):
        raise BoundaryError("no interior extremum found inside the limiter")
    r_axis, z_axis, value = _quadratic_refine(grid, sign * psi, i, j)
    return r_axis, z_axis, sign * value


def find_xpoints(
    grid: RZGrid, psi: np.ndarray, *, max_points: int = 2
) -> list[tuple[float, float, float]]:
    """Find saddle points of ``psi`` (X-point candidates).

    Scans interior nodes for local minima of ``|grad psi|^2`` whose Hessian
    has negative determinant, refines each with the quadratic model, and
    returns up to ``max_points`` candidates as ``(r, z, psi_x)`` sorted by
    gradient magnitude.
    """
    dpsi_dr = np.gradient(psi, grid.dr, axis=0)
    dpsi_dz = np.gradient(psi, grid.dz, axis=1)
    grad2 = dpsi_dr**2 + dpsi_dz**2
    candidates: list[tuple[float, float, float, float]] = []
    interior = grad2[1:-1, 1:-1]
    # Local minima of |grad psi|^2 over the 3x3 neighbourhood.
    neigh_min = ndimage.minimum_filter(grad2, size=3)[1:-1, 1:-1]
    is_min = interior <= neigh_min
    idx_i, idx_j = np.nonzero(is_min)
    for ii, jj in zip(idx_i + 1, idx_j + 1):
        f = psi
        fxx = f[ii + 1, jj] - 2 * f[ii, jj] + f[ii - 1, jj]
        fyy = f[ii, jj + 1] - 2 * f[ii, jj] + f[ii, jj - 1]
        fxy = (
            f[ii + 1, jj + 1] - f[ii + 1, jj - 1] - f[ii - 1, jj + 1] + f[ii - 1, jj - 1]
        ) / 4.0
        if fxx * fyy - fxy * fxy >= 0.0:
            continue  # not a saddle
        r_x, z_x, psi_x = _quadratic_refine(grid, psi, ii, jj)
        candidates.append((grad2[ii, jj], r_x, z_x, psi_x))
    candidates.sort(key=lambda c: c[0])
    return [(r, z, p) for _, r, z, p in candidates[:max_points]]


def _core_clears_wall(
    grid: RZGrid,
    psi: np.ndarray,
    sign: int,
    spx: float,
    inside_lim: np.ndarray,
    i_ax: int,
    j_ax: int,
    lr: np.ndarray,
    lz: np.ndarray,
    psi_wall_signed: np.ndarray,
) -> bool:
    """Does the plasma bounded by the X-point at flux ``spx`` avoid the wall?

    Wall samples can carry flux above ``spx`` *without* limiting the plasma
    when they sit in a private-flux region (below/above a divertor X-point)
    that is disconnected from the core.  Label the super-level set
    ``sign*psi > spx`` and check whether any hot wall sample's grid cell
    touches the component containing the axis; if none does, the hot
    contacts are private flux and the X-point surface is a true separatrix.

    The labelling level sits a couple of percent inside ``spx``: the
    refined saddle value is a sub-node minimum, so every node *around*
    the X-point carries flux above ``spx`` and a level set taken exactly
    there always leaks through the saddle, spuriously connecting core to
    private flux on any grid.
    """
    level = spx + 0.02 * (sign * psi[i_ax, j_ax] - spx)
    core = (sign * psi > level) & inside_lim
    labels, _ = ndimage.label(core)
    axis_label = labels[i_ax, j_ax]
    if axis_label == 0:
        return False
    hot = psi_wall_signed >= spx
    if not hot.any():
        return True
    i0 = np.clip(((lr[hot] - grid.rmin) / grid.dr).astype(int), 0, grid.nw - 2)
    j0 = np.clip(((lz[hot] - grid.zmin) / grid.dz).astype(int), 0, grid.nh - 2)
    for di in (0, 1):
        for dj in (0, 1):
            if (labels[i0 + di, j0 + dj] == axis_label).any():
                return False
    return True


def find_boundary(
    grid: RZGrid,
    psi: np.ndarray,
    limiter: Limiter,
    *,
    sign: int = 1,
    n_limiter_samples: int = 4,
    inside: np.ndarray | None = None,
    limiter_samples: tuple[np.ndarray, np.ndarray] | None = None,
) -> BoundaryResult:
    """Full ``steps_`` boundary determination.

    ``sign`` is the plasma-current sign convention: +1 means ``psi`` has a
    maximum on the axis (so ``psi`` decreases outward).

    ``inside`` and ``limiter_samples`` optionally supply the precomputed
    limiter-containment mask on the grid and the densified limiter
    contour (both static per machine+grid); when omitted they are rebuilt
    per call, exactly as before.
    """
    psi = np.asarray(psi, dtype=float)
    if psi.shape != grid.shape:
        raise BoundaryError(f"psi shape {psi.shape} != grid {grid.shape}")
    r_axis, z_axis, psi_axis = find_axis(grid, psi, limiter, sign, inside=inside)

    # Limiter candidate: the flux value where a shrinking contour first
    # touches the wall = extremal psi along the limiter contour.
    lr, lz = limiter_samples if limiter_samples is not None else limiter.sample_points(n_limiter_samples)
    keep = grid.contains(lr, lz)
    if not keep.any():
        raise BoundaryError("no limiter samples inside the computational box")
    psi_wall = grid.bilinear(psi, lr[keep], lz[keep])
    psi_lim = float(np.max(sign * psi_wall))

    inside_lim = inside if inside is not None else limiter.contains(grid.rr, grid.zz)
    i_ax = min(max(int(round((r_axis - grid.rmin) / grid.dr)), 0), grid.nw - 1)
    j_ax = min(max(int(round((z_axis - grid.zmin) / grid.dz)), 0), grid.nh - 1)

    # X-point candidates: must lie inside the box *and the limiter* (wall
    # corners and coil gaps host spurious vacuum saddles), away from the
    # axis, and bound a *smaller* plasma than the limiter (larger
    # sign*psi).  A candidate below the limiter flux can still win when
    # every wall contact above it sits in disconnected private flux
    # (diverted machines: the divertor legs hug the wall at flux above
    # psi_x).  Of the passing candidates the most binding one (largest
    # sign*psi) sets the boundary.
    psi_b = psi_lim
    boundary_type = "limiter"
    r_x = z_x = None
    psi_wall_signed = sign * psi_wall
    cands = find_xpoints(grid, psi, max_points=6)
    if cands:
        # One batched point-in-polygon test for every candidate — the
        # polygon test is the expensive part, and its cost is per-call,
        # not per-point.
        rxs = np.array([c[0] for c in cands])
        zxs = np.array([c[1] for c in cands])
        admissible = (
            grid.contains(rxs, zxs)
            & limiter.contains(rxs, zxs)
            & (np.hypot(rxs - r_axis, zxs - z_axis) >= 4.0 * max(grid.dr, grid.dz))
        )
        for cand_ok, (rx, zx, px) in zip(admissible, cands):
            if not cand_ok:
                continue
            spx = sign * px
            if not spx < sign * psi_axis:
                continue
            if boundary_type == "xpoint" and spx <= psi_b:
                continue
            if psi_lim < spx or _core_clears_wall(
                grid, psi, sign, spx, inside_lim, i_ax, j_ax, lr[keep], lz[keep], psi_wall_signed
            ):
                psi_b = spx
                boundary_type = "xpoint"
                r_x, z_x = rx, zx
    psi_boundary = sign * psi_b

    denom = psi_boundary - psi_axis
    if denom == 0.0:
        raise BoundaryError("degenerate flux range: psi_axis == psi_boundary")
    psin = (psi - psi_axis) / denom

    candidate = (psin < 1.0) & inside_lim
    # Keep only the component connected to the axis (drop private flux).
    if boundary_type == "xpoint":
        # On a diverted boundary the ``psin < 1`` set leaks through the
        # saddle into the private-flux region (every node around the
        # refined X-point sits above ``psi_x``), intermittently dumping
        # far-from-core cells into the mask.  Label the component at a
        # slightly interior level instead, then grow its rim back within
        # ``psin < 1`` — the private blob stays more than two rings away.
        core = (psin < 0.98) & inside_lim
        labels, _ = ndimage.label(core)
        axis_label = labels[i_ax, j_ax]
        if axis_label == 0:
            raise BoundaryError("magnetic axis not inside its own plasma mask")
        mask = ndimage.binary_dilation(labels == axis_label, iterations=2) & candidate
    else:
        labels, _ = ndimage.label(candidate)
        axis_label = labels[i_ax, j_ax]
        if axis_label == 0:
            raise BoundaryError("magnetic axis not inside its own plasma mask")
        mask = labels == axis_label

    return BoundaryResult(
        psi_axis=psi_axis,
        r_axis=r_axis,
        z_axis=z_axis,
        psi_boundary=psi_boundary,
        boundary_type=boundary_type,
        psin=psin,
        mask=mask,
        r_xpoint=r_x,
        z_xpoint=z_x,
    )
