"""Grid-resolution study: why the paper wants fast 257^2/513^2 fits.

The paper's motivation (Section 1/2): "Low spatial resolution grids
(65x65, 129x129) are used to overcome the lack of code performance. At the
same time, high-resolution grids (257x257, 513x513) are required to get
more accurate information for plasma control."  This module quantifies
that trade-off on the synthetic shot: reconstruct the same discharge at a
sweep of grid sizes and measure how the flux map and the derived control
quantities (q95, shape, stored energy) converge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.contours import trace_flux_surface
from repro.efit.fitting import EfitSolver
from repro.efit.globalparams import compute_global_parameters
from repro.efit.grid import RZGrid
from repro.efit.measurements import synthetic_shot_186610
from repro.efit.qprofile import QProfile
from repro.efit.shape import ShapeParameters
from repro.errors import ReproError

__all__ = ["ResolutionPoint", "resolution_sweep"]


@dataclass(frozen=True)
class ResolutionPoint:
    """One grid size's reconstruction summary."""

    n: int
    iterations: int
    chi2: float
    q95: float
    kappa: float
    beta_poloidal: float
    psi_rms_vs_truth: float

    @property
    def label(self) -> str:
        return f"{self.n}x{self.n}"


def _psi_rms(grid: RZGrid, psi: np.ndarray, shot) -> float:
    """RMS flux error against the same-grid ground truth, normalised."""
    truth = shot.truth.psi
    return float(np.sqrt(np.mean((psi - truth) ** 2)) / np.ptp(truth))


def resolution_sweep(
    sizes: tuple[int, ...] = (33, 65, 129),
    *,
    noise: float = 1e-3,
    n_mse: int = 0,
) -> list[ResolutionPoint]:
    """Reconstruct the synthetic shot at each grid size.

    Each size gets its own forward-solved ground truth and measurement
    set (same machine, same profiles, same Ip), so the sweep isolates
    discretisation effects the way a real between-shot analysis choice
    between 65^2 and 257^2 would.
    """
    if len(sizes) < 2:
        raise ReproError("a resolution sweep needs at least two grid sizes")
    if sorted(sizes) != list(sizes):
        raise ReproError("grid sizes must be increasing")
    out: list[ResolutionPoint] = []
    for n in sizes:
        shot = synthetic_shot_186610(n, noise=noise, n_mse=n_mse)
        solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid)
        res = solver.fit(shot.measurements)
        f_vac = shot.machine.f_vacuum
        qprof = QProfile.compute(
            shot.grid, res.psi, res.boundary, lambda s: f_vac, n_levels=16
        )
        lcfs = trace_flux_surface(shot.grid, res.boundary, 0.98)
        shape = ShapeParameters.from_surface(lcfs)
        glob = compute_global_parameters(
            shot.grid, res.psi, res.boundary, res.profiles, res.ip
        )
        out.append(
            ResolutionPoint(
                n=n,
                iterations=res.iterations,
                chi2=res.chi2,
                q95=qprof.q95,
                kappa=shape.kappa,
                beta_poloidal=glob.beta_poloidal,
                psi_rms_vs_truth=_psi_rms(shot.grid, res.psi, shot),
            )
        )
    return out
