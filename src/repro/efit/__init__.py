"""The EFIT-style Grad-Shafranov equilibrium-reconstruction substrate.

This subpackage is a from-scratch Python implementation of the core solver
the paper accelerates (Section 2): a rectangular (R, Z) grid, filament Green
functions, the ``Delta*`` operator and its fast Dirichlet solvers, polynomial
``p'``/``FF'`` current bases, a tokamak machine description with magnetic
diagnostics, and the ``fit_`` Picard loop built from the paper's four
subroutines (``green_``, ``current_``, ``pflux_``, ``steps_``).
"""

from repro.efit.grid import RZGrid
from repro.efit.greens import (
    greens_psi,
    greens_br,
    greens_bz,
    mutual_inductance,
)
from repro.efit.tables import (
    BoundaryGreensTables,
    BoundaryTableCache,
    boundary_table_cache,
    build_boundary_tables,
    cached_boundary_tables,
)
from repro.efit.operators import GradShafranovOperator
from repro.efit.basis import PolynomialBasis
from repro.efit.profiles import ProfileCoefficients
from repro.efit.machine import (
    Tokamak,
    PoloidalFieldCoil,
    Limiter,
    VesselSegment,
    miller_contour,
    diiid_like_machine,
    spherical_torus_machine,
    double_null_machine,
    single_null_machine,
)
from repro.efit.diagnostics import FluxLoop, MagneticProbe, MSEChannel, RogowskiCoil, DiagnosticSet
from repro.efit.measurements import (
    MeasurementSet,
    SyntheticShot,
    measure_equilibrium,
    synthetic_shot_186610,
    synthetic_solovev_shot,
)
from repro.efit.solovev import SolovevEquilibrium
from repro.efit.boundary import BoundaryResult, find_axis, find_boundary
from repro.efit.contours import FluxSurface, trace_flux_surface
from repro.efit.qprofile import QProfile, safety_factor
from repro.efit.current import distribute_current
from repro.efit.pflux import (
    PfluxOperator,
    PfluxReference,
    PfluxVectorized,
    boundary_flux_operator,
    edge_flux_operator,
    edge_node_indices,
)
from repro.efit.fitting import EfitSolver, FitResult, FitIterationRecord, FitState, GridStatics
from repro.efit.eqdsk import GEqdsk, write_geqdsk, read_geqdsk
from repro.efit.output import geqdsk_from_fit
from repro.efit.afile import AFile, afile_from_fit, write_afile, read_afile
from repro.efit.shape import ShapeParameters

__all__ = [
    "RZGrid",
    "greens_psi",
    "greens_br",
    "greens_bz",
    "mutual_inductance",
    "BoundaryGreensTables",
    "BoundaryTableCache",
    "boundary_table_cache",
    "build_boundary_tables",
    "cached_boundary_tables",
    "GradShafranovOperator",
    "PolynomialBasis",
    "ProfileCoefficients",
    "Tokamak",
    "PoloidalFieldCoil",
    "Limiter",
    "VesselSegment",
    "miller_contour",
    "diiid_like_machine",
    "spherical_torus_machine",
    "double_null_machine",
    "single_null_machine",
    "FluxLoop",
    "MagneticProbe",
    "MSEChannel",
    "RogowskiCoil",
    "DiagnosticSet",
    "MeasurementSet",
    "SyntheticShot",
    "measure_equilibrium",
    "synthetic_shot_186610",
    "synthetic_solovev_shot",
    "SolovevEquilibrium",
    "BoundaryResult",
    "find_axis",
    "find_boundary",
    "FluxSurface",
    "trace_flux_surface",
    "QProfile",
    "safety_factor",
    "distribute_current",
    "PfluxOperator",
    "PfluxReference",
    "PfluxVectorized",
    "boundary_flux_operator",
    "edge_flux_operator",
    "edge_node_indices",
    "EfitSolver",
    "FitResult",
    "FitIterationRecord",
    "FitState",
    "GridStatics",
    "GEqdsk",
    "write_geqdsk",
    "geqdsk_from_fit",
    "AFile",
    "afile_from_fit",
    "write_afile",
    "read_afile",
    "ShapeParameters",
    "read_geqdsk",
]
