"""Interior Dirichlet solvers for the discrete Grad-Shafranov equation.

Given the right-hand side ``-mu0 R J_phi`` on the grid and the boundary
flux from the Green-function sums, ``pflux_`` completes the solve with a
fast direct method.  Production EFIT uses a Buneman-style cyclic-reduction
solver; we provide four interchangeable implementations:

* :class:`DirectLUSolver` — sparse LU factorisation (robust reference),
* :class:`DSTSolver` — sine-transform in Z + vectorised tridiagonal solves
  in R (O(N^2 log N)),
* :class:`CyclicReductionSolver` — Buneman cyclic reduction, the actual
  algorithm class production EFIT uses (and the reason its grids are
  2^k + 1),
* :class:`ConjugateGradientSolver` — symmetrised CG (iterative reference).

All share the :class:`GSInteriorSolver` interface and are validated against
each other and against analytic Solov'ev equilibria in the test suite.
"""

from repro.efit.solvers.base import GSInteriorSolver, make_solver, SOLVER_NAMES
from repro.efit.solvers.cyclic import CyclicReductionSolver
from repro.efit.solvers.direct import DirectLUSolver
from repro.efit.solvers.dst import DSTSolver
from repro.efit.solvers.iterative import ConjugateGradientSolver

__all__ = [
    "GSInteriorSolver",
    "make_solver",
    "SOLVER_NAMES",
    "CyclicReductionSolver",
    "DirectLUSolver",
    "DSTSolver",
    "ConjugateGradientSolver",
]
