"""Buneman cyclic-reduction fast solver — the algorithm production EFIT uses.

The interior system couples Z-planes with a *scalar* coefficient
``c = 1/dz^2`` around a constant tridiagonal R-operator ``T``.  Dividing
by ``c`` normalises it to

    x_{j-1} + A x_j + x_{j+1} = b_j / c,       A = T / c,   j = 1 .. m.

Cyclic reduction eliminates every other plane per level,

    A_{r+1} = 2 I - A_r^2,

and after ``k = log2(m+1)`` levels one equation remains — which is why
EFIT grids are always ``2^k + 1`` (65, 129, 257, 513).  ``A_r`` is a
degree-``2^r`` Chebyshev-like polynomial in ``A`` with known roots
``a_i = -2 cos((2i-1) pi / 2^{r+1})``, so each ``A_r^{-1}`` application is
a short product of shifted *tridiagonal* solves: O(N^2 log N) total using
only banded kernels.

The naive right-hand-side recursion ``b' = b_{j-h} + b_{j+h} - A_r b_j``
amplifies round-off like ``||A_r||`` (we measured 1e-5 absolute error by
65 planes); this implementation therefore uses **Buneman's variant 1**
(Buzbee, Golub & Nielson, SIAM J. Numer. Anal. 1970), which carries the
RHS as ``b_j = A_r p_j + q_j`` with the stable recurrences

    w           = A_r^{-1} (p_{j-h} + p_{j+h} - q_j)
    p^{(r+1)}_j = p_j - w
    q^{(r+1)}_j = q_{j-h} + q_{j+h} - 2 p^{(r+1)}_j

and back-substitutes ``x_j = p_j + A_r^{-1}(q_j - x_{j-h} - x_{j+h})``.
Accuracy then matches the direct solver to ~1e-12 at every paper grid.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import solve_banded

from repro.efit.grid import RZGrid
from repro.efit.solvers.base import GSInteriorSolver
from repro.errors import SolverError

__all__ = ["CyclicReductionSolver"]


def _is_pow2_minus_1(m: int) -> bool:
    return m >= 1 and ((m + 1) & m) == 0


class CyclicReductionSolver(GSInteriorSolver):
    """Buneman cyclic reduction over Z-planes, tridiagonal solves in R.

    Requires ``nh - 2 = 2^k - 1`` interior planes (every paper grid
    qualifies).  ``nw`` is unconstrained.
    """

    def __init__(self, grid: RZGrid) -> None:
        super().__init__(grid)
        m = grid.nh - 2
        if not _is_pow2_minus_1(m):
            raise SolverError(
                f"cyclic reduction needs nh = 2^k + 1 (interior planes a "
                f"power of two minus one); got nh = {grid.nh} (m = {m})"
            )
        self.m = m
        self.k = int(math.log2(m + 1))
        dr2 = grid.dr**2
        self.c = 1.0 / grid.dz**2
        ap = self.operator.a_plus / dr2
        am = self.operator.a_minus / dr2
        diag = -(self.operator.a_plus + self.operator.a_minus) / dr2 - 2.0 / grid.dz**2
        ni = grid.nw - 2
        # Banded storage of T for solve_banded ((1, 1) bands).
        self._upper = np.concatenate((ap[:-1], [0.0]))
        self._lower = np.concatenate(([0.0], am[1:]))
        self._diag = diag
        self._ni = ni

    # -- T and A_r as operators ------------------------------------------------------
    def _solve_t(self, b: np.ndarray, shift: float = 0.0) -> np.ndarray:
        """(T + shift I)^{-1} b."""
        ab = np.zeros((3, self._ni))
        ab[0, 1:] = self._upper[:-1]
        ab[1, :] = self._diag + shift
        ab[2, :-1] = self._lower[1:]
        return solve_banded((1, 1), ab, b)

    def _shifts(self, r: int) -> np.ndarray:
        """T-space roots ``t_i = c * a_i = -2 c cos((2i-1) pi / 2^{r+1})``."""
        i = np.arange(1, 2**r + 1)
        return -2.0 * self.c * np.cos((2.0 * i - 1.0) * np.pi / 2 ** (r + 1))

    def _solve_a(self, r: int, b: np.ndarray) -> np.ndarray:
        """``A_r^{-1} b`` with ``A_0 = T/c`` and ``A_{r+1} = 2I - A_r^2``.

        ``A_r = -prod_i (A - a_i I)`` for r >= 1; each factor inverse is
        ``c (T - t_i I)^{-1}``, applied root by root so the ``c^{2^r}``
        normalisation never materialises as one overflowing scalar.
        """
        if r == 0:
            return self.c * self._solve_t(b)
        y = -b
        for t in self._shifts(r):
            y = self.c * self._solve_t(y, shift=-t)
        return y

    # -- the solver --------------------------------------------------------------------
    def _solve_interior(self, b: np.ndarray) -> np.ndarray:
        m, k = self.m, self.k
        ni = self._ni
        # Normalised planes (0-based index j for 1-based plane j+1).
        p = [np.zeros(ni) for _ in range(m)]
        q = [b[:, j] / self.c for j in range(m)]
        zero = np.zeros(ni)

        # --- Buneman reduction ------------------------------------------------
        for r in range(k - 1):
            step = 2 ** (r + 1)
            half = 2**r
            new_p: dict[int, np.ndarray] = {}
            new_q: dict[int, np.ndarray] = {}
            for j in range(step - 1, m, step):
                p_lo = p[j - half]
                p_hi = p[j + half] if j + half < m else zero
                q_lo = q[j - half]
                q_hi = q[j + half] if j + half < m else zero
                w = self._solve_a(r, p_lo + p_hi - q[j])
                new_p[j] = p[j] - w
                new_q[j] = q_lo + q_hi - 2.0 * new_p[j]
            for j, val in new_p.items():
                p[j] = val
                q[j] = new_q[j]

        # --- final single equation at the middle plane -------------------------
        x: list[np.ndarray | None] = [None] * m
        mid = 2 ** (k - 1) - 1
        x[mid] = p[mid] + self._solve_a(k - 1, q[mid])

        # --- back substitution --------------------------------------------------
        for r in range(k - 2, -1, -1):
            step = 2 ** (r + 1)
            half = 2**r
            for j in range(half - 1, m, step):
                lo = x[j - half] if j - half >= 0 else zero
                hi = x[j + half] if j + half < m else zero
                x[j] = p[j] + self._solve_a(r, q[j] - lo - hi)

        out = np.empty((ni, m))
        for j in range(m):
            out[:, j] = x[j]
        return out
