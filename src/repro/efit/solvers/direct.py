"""Sparse-LU direct solver: the robust reference implementation."""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import splu

from repro.efit.grid import RZGrid
from repro.efit.solvers.base import GSInteriorSolver

__all__ = ["DirectLUSolver"]


class DirectLUSolver(GSInteriorSolver):
    """LU-factorised interior solve.

    Factorisation costs O(N^3) once per grid but each subsequent solve is a
    pair of triangular sweeps — the right trade-off for a Picard loop that
    calls ``pflux_`` hundreds of times on a fixed mesh.
    """

    def __init__(self, grid: RZGrid) -> None:
        super().__init__(grid)
        self._lu = splu(self.operator.interior_matrix)

    def _solve_interior(self, b: np.ndarray) -> np.ndarray:
        ni, nj = self.grid.nw - 2, self.grid.nh - 2
        x = self._lu.solve(b.reshape(ni * nj))
        return x.reshape(ni, nj)
