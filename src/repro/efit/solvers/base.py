"""Common interface for the interior Grad-Shafranov solvers."""

from __future__ import annotations

import abc

import numpy as np

from repro.efit.grid import RZGrid
from repro.efit.operators import GradShafranovOperator
from repro.errors import GridError, SolverError

__all__ = ["GSInteriorSolver", "make_solver", "SOLVER_NAMES"]


class GSInteriorSolver(abc.ABC):
    """Solve ``Delta* psi = rhs`` inside the box with Dirichlet edge data.

    Implementations precompute whatever factorisation they need at
    construction (per-grid cost, amortised over the Picard iterations) and
    expose a single :meth:`solve`.
    """

    def __init__(self, grid: RZGrid) -> None:
        self.grid = grid
        self.operator = GradShafranovOperator(grid)

    @abc.abstractmethod
    def _solve_interior(self, b: np.ndarray) -> np.ndarray:
        """Solve the interior system ``A x = b`` with ``b`` shaped
        ``(nw-2, nh-2)``; returns ``x`` with the same shape."""

    def _solve_interior_batch(self, b: np.ndarray) -> np.ndarray:
        """Solve ``B`` stacked interior systems, ``b`` shaped
        ``(B, nw-2, nh-2)``.  The default loops :meth:`_solve_interior`;
        solvers with a genuine multi-RHS path (the DST solver stacks all
        columns into one vectorised Thomas sweep) override this."""
        out = np.empty_like(b)
        for k in range(b.shape[0]):
            out[k] = self._solve_interior(b[k])
        return out

    def solve(self, rhs: np.ndarray, psi_boundary: np.ndarray) -> np.ndarray:
        """Solve for the full ``(nw, nh)`` flux.

        Parameters
        ----------
        rhs:
            Full-grid right-hand side ``-mu0 R J_phi``; only the interior
            values are used.
        psi_boundary:
            Full-grid field whose edge ring supplies the Dirichlet data
            (typically the Green-function boundary sums plus coil flux).
        """
        grid = self.grid
        rhs = np.asarray(rhs, dtype=float)
        psi_boundary = np.asarray(psi_boundary, dtype=float)
        if rhs.shape != grid.shape or psi_boundary.shape != grid.shape:
            raise GridError("rhs/boundary shape mismatch with grid")
        ni, nj = grid.nw - 2, grid.nh - 2
        corr = self.operator.dirichlet_rhs_correction(psi_boundary).reshape(ni, nj)
        b = rhs[1:-1, 1:-1] - corr
        x = self._solve_interior(b)
        if x.shape != (ni, nj):
            raise SolverError(f"interior solution shape {x.shape} != {(ni, nj)}")
        psi = np.empty(grid.shape)
        psi[0, :] = psi_boundary[0, :]
        psi[-1, :] = psi_boundary[-1, :]
        psi[:, 0] = psi_boundary[:, 0]
        psi[:, -1] = psi_boundary[:, -1]
        psi[1:-1, 1:-1] = x
        return psi

    def solve_batch(
        self,
        rhs: np.ndarray,
        psi_boundary: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve ``B`` independent slices stacked along the leading axis.

        ``rhs`` and ``psi_boundary`` are ``(B, nw, nh)``; returns the
        ``(B, nw, nh)`` fluxes.  The Dirichlet correction and the interior
        solve are vectorised across the batch where the backend supports
        it; per-slice results are elementwise-identical to :meth:`solve`.
        ``out`` lets the batch engine reuse a workspace buffer.
        """
        grid = self.grid
        rhs = np.asarray(rhs, dtype=float)
        psi_boundary = np.asarray(psi_boundary, dtype=float)
        if rhs.ndim != 3 or rhs.shape[1:] != grid.shape or psi_boundary.shape != rhs.shape:
            raise GridError("batched rhs/boundary shape mismatch with grid")
        nb = rhs.shape[0]
        ni, nj = grid.nw - 2, grid.nh - 2
        corr = self.operator.dirichlet_rhs_correction_batch(psi_boundary)
        b = rhs[:, 1:-1, 1:-1] - corr
        x = self._solve_interior_batch(b)
        if x.shape != (nb, ni, nj):
            raise SolverError(f"batched interior solution shape {x.shape} != {(nb, ni, nj)}")
        if out is None:
            out = np.empty((nb,) + grid.shape)
        elif out.shape != (nb,) + grid.shape:
            raise GridError(f"out shape {out.shape} != {(nb,) + grid.shape}")
        out[:, 0, :] = psi_boundary[:, 0, :]
        out[:, -1, :] = psi_boundary[:, -1, :]
        out[:, :, 0] = psi_boundary[:, :, 0]
        out[:, :, -1] = psi_boundary[:, :, -1]
        out[:, 1:-1, 1:-1] = x
        return out


SOLVER_NAMES = ("direct", "dst", "cyclic", "cg")


def make_solver(name: str, grid: RZGrid, **kwargs) -> GSInteriorSolver:
    """Factory keyed on solver name (``direct`` | ``dst`` | ``cyclic`` | ``cg``)."""
    from repro.efit.solvers.cyclic import CyclicReductionSolver
    from repro.efit.solvers.direct import DirectLUSolver
    from repro.efit.solvers.dst import DSTSolver
    from repro.efit.solvers.iterative import ConjugateGradientSolver

    table = {
        "direct": DirectLUSolver,
        "dst": DSTSolver,
        "cyclic": CyclicReductionSolver,
        "cg": ConjugateGradientSolver,
    }
    try:
        cls = table[name]
    except KeyError:
        raise SolverError(f"unknown solver {name!r}; choose from {SOLVER_NAMES}") from None
    return cls(grid, **kwargs)
