"""Common interface for the interior Grad-Shafranov solvers."""

from __future__ import annotations

import abc

import numpy as np

from repro.efit.grid import RZGrid
from repro.efit.operators import GradShafranovOperator
from repro.errors import GridError, SolverError

__all__ = ["GSInteriorSolver", "make_solver", "SOLVER_NAMES"]


class GSInteriorSolver(abc.ABC):
    """Solve ``Delta* psi = rhs`` inside the box with Dirichlet edge data.

    Implementations precompute whatever factorisation they need at
    construction (per-grid cost, amortised over the Picard iterations) and
    expose a single :meth:`solve`.
    """

    def __init__(self, grid: RZGrid) -> None:
        self.grid = grid
        self.operator = GradShafranovOperator(grid)

    @abc.abstractmethod
    def _solve_interior(self, b: np.ndarray) -> np.ndarray:
        """Solve the interior system ``A x = b`` with ``b`` shaped
        ``(nw-2, nh-2)``; returns ``x`` with the same shape."""

    def solve(self, rhs: np.ndarray, psi_boundary: np.ndarray) -> np.ndarray:
        """Solve for the full ``(nw, nh)`` flux.

        Parameters
        ----------
        rhs:
            Full-grid right-hand side ``-mu0 R J_phi``; only the interior
            values are used.
        psi_boundary:
            Full-grid field whose edge ring supplies the Dirichlet data
            (typically the Green-function boundary sums plus coil flux).
        """
        grid = self.grid
        rhs = np.asarray(rhs, dtype=float)
        psi_boundary = np.asarray(psi_boundary, dtype=float)
        if rhs.shape != grid.shape or psi_boundary.shape != grid.shape:
            raise GridError("rhs/boundary shape mismatch with grid")
        ni, nj = grid.nw - 2, grid.nh - 2
        corr = self.operator.dirichlet_rhs_correction(psi_boundary).reshape(ni, nj)
        b = rhs[1:-1, 1:-1] - corr
        x = self._solve_interior(b)
        if x.shape != (ni, nj):
            raise SolverError(f"interior solution shape {x.shape} != {(ni, nj)}")
        psi = np.empty(grid.shape)
        psi[0, :] = psi_boundary[0, :]
        psi[-1, :] = psi_boundary[-1, :]
        psi[:, 0] = psi_boundary[:, 0]
        psi[:, -1] = psi_boundary[:, -1]
        psi[1:-1, 1:-1] = x
        return psi


SOLVER_NAMES = ("direct", "dst", "cyclic", "cg")


def make_solver(name: str, grid: RZGrid, **kwargs) -> GSInteriorSolver:
    """Factory keyed on solver name (``direct`` | ``dst`` | ``cyclic`` | ``cg``)."""
    from repro.efit.solvers.cyclic import CyclicReductionSolver
    from repro.efit.solvers.direct import DirectLUSolver
    from repro.efit.solvers.dst import DSTSolver
    from repro.efit.solvers.iterative import ConjugateGradientSolver

    table = {
        "direct": DirectLUSolver,
        "dst": DSTSolver,
        "cyclic": CyclicReductionSolver,
        "cg": ConjugateGradientSolver,
    }
    try:
        cls = table[name]
    except KeyError:
        raise SolverError(f"unknown solver {name!r}; choose from {SOLVER_NAMES}") from None
    return cls(grid, **kwargs)
