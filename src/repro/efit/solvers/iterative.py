"""Symmetrised conjugate-gradient interior solver (iterative reference).

The conservative ``Delta*`` stencil is self-adjoint under the ``1/R``
weight: scaling row ``i`` of the interior matrix by ``1/R_i`` produces a
symmetric negative-definite system.  We solve ``-(D A) x = -(D b)`` with
plain CG.  This solver exists as an independent cross-check on the direct
and DST solvers and as the fallback for meshes whose LU factorisation
would not fit in memory.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import cg

from repro.efit.grid import RZGrid
from repro.efit.solvers.base import GSInteriorSolver
from repro.errors import ConvergenceError

__all__ = ["ConjugateGradientSolver"]


class ConjugateGradientSolver(GSInteriorSolver):
    """CG on the 1/R-symmetrised interior system."""

    def __init__(self, grid: RZGrid, *, rtol: float = 1e-12, maxiter: int | None = None) -> None:
        super().__init__(grid)
        self.rtol = rtol
        ni, nj = grid.nw - 2, grid.nh - 2
        self.maxiter = maxiter if maxiter is not None else 20 * (ni + nj)
        r_interior = np.repeat(grid.r[1:-1], nj)
        weight = sp.diags(1.0 / r_interior, format="csc")
        # Negate so the system is positive definite for CG.
        self._mat = (-(weight @ self.operator.interior_matrix)).tocsc()
        self._weight_diag = 1.0 / r_interior

    def _solve_interior(self, b: np.ndarray) -> np.ndarray:
        ni, nj = self.grid.nw - 2, self.grid.nh - 2
        rhs = -(self._weight_diag * b.reshape(ni * nj))
        x, info = cg(self._mat, rhs, rtol=self.rtol, maxiter=self.maxiter)
        if info != 0:
            raise ConvergenceError(f"CG failed to converge (info={info})")
        return x.reshape(ni, nj)
