"""Fast Grad-Shafranov solver: sine transform in Z, tridiagonals in R.

The ``Delta*`` operator separates on the uniform mesh: the Z part is the
constant-coefficient second difference, diagonalised by the type-I discrete
sine transform (Dirichlet-Dirichlet), while the R part is a tridiagonal
operator per mode.  This is the same O(N^2 log N) structure as the
Buneman/cyclic-reduction solver EFIT's ``pflux_`` uses, and it is the
implementation offloaded in :mod:`repro.core.offload`.

Algorithm for the interior unknowns (shape ``(ni, nj)``):

1. DST-I each interior row along Z: ``b_hat[i, m]``.
2. For each mode ``m`` with eigenvalue
   ``lam_m = -4 sin^2(pi (m+1) / (2 (nh-1))) / dz^2`` solve the tridiagonal
   system ``am_i x[i-1] + (d_i + lam_m) x[i] + ap_i x[i+1] = b_hat[i, m]``.
   All modes share the off-diagonals, so a single vectorised Thomas sweep
   handles every mode at once.
3. Inverse DST-I back to physical space.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dst, idst

from repro.analysis.markers import hot_path
from repro.efit.grid import RZGrid
from repro.efit.solvers.base import GSInteriorSolver
from repro.errors import SolverError

__all__ = ["DSTSolver", "thomas_multi_rhs"]


def thomas_multi_rhs(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Thomas algorithm for many tridiagonal systems sharing off-diagonals.

    Parameters
    ----------
    lower, upper:
        Off-diagonals, shape ``(n,)`` (``lower[0]`` and ``upper[n-1]``
        unused).
    diag:
        Diagonals, shape ``(n, m)`` — one column per system.
    rhs:
        Right-hand sides, shape ``(n, m)``.

    Returns the ``(n, m)`` solution.  The sweep is vectorised across the
    ``m`` systems; only the ``n`` dimension is a Python loop.
    """
    n, m = rhs.shape
    if diag.shape != (n, m) or lower.shape != (n,) or upper.shape != (n,):
        raise SolverError("thomas_multi_rhs shape mismatch")
    cp = np.empty((n, m))
    dp = np.empty((n, m))
    cp[0] = upper[0] / diag[0]
    dp[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * cp[i - 1]
        cp[i] = upper[i] / denom
        dp[i] = (rhs[i] - lower[i] * dp[i - 1]) / denom
    x = np.empty((n, m))
    x[-1] = dp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


class DSTSolver(GSInteriorSolver):
    """Sine-transform fast solver (EFIT's production solver class)."""

    def __init__(self, grid: RZGrid) -> None:
        super().__init__(grid)
        ni = grid.nw - 2
        nj = grid.nh - 2
        dr2 = grid.dr**2
        dz2 = grid.dz**2
        modes = np.arange(1, nj + 1)
        #: Z-direction eigenvalues of the second difference, shape (nj,).
        self.lam = -4.0 / dz2 * np.sin(np.pi * modes / (2.0 * (grid.nh - 1))) ** 2
        ap = self.operator.a_plus / dr2
        am = self.operator.a_minus / dr2
        self._lower = np.concatenate(([0.0], am[1:]))
        self._upper = np.concatenate((ap[:-1], [0.0]))
        base_diag = -(self.operator.a_plus + self.operator.a_minus) / dr2
        #: Per-(row, mode) diagonal: base R-stencil diagonal plus lam_m.
        self._diag = base_diag[:, None] + self.lam[None, :]
        if np.any(np.abs(self._diag) < 1e-300):
            raise SolverError("singular mode diagonal in DST solver")
        self._ni = ni
        self._nj = nj
        #: Per-batch-size tiled diagonals for the stacked multi-RHS sweep,
        #: built lazily and reused across Picard iterates and batches.
        self._diag_tiles: dict[int, np.ndarray] = {}

    def _solve_interior(self, b: np.ndarray) -> np.ndarray:
        # Forward DST-I along Z (axis 1); ortho norm makes idst the inverse.
        b_hat = dst(b, type=1, axis=1, norm="ortho")
        x_hat = thomas_multi_rhs(self._lower, self._diag, self._upper, b_hat)
        return idst(x_hat, type=1, axis=1, norm="ortho")

    @hot_path
    def _solve_interior_batch(self, b: np.ndarray) -> np.ndarray:
        """True multi-RHS path: all slices' modes in one Thomas sweep.

        The Z transform vectorises over the leading batch axis, and since
        every slice shares the same tridiagonal off-diagonals, stacking
        the ``B * nj`` mode columns side by side turns the whole batch
        into a single :func:`thomas_multi_rhs` call — the mode loop cost
        is paid once instead of ``B`` times.
        """
        nb = b.shape[0]
        ni, nj = self._ni, self._nj
        b_hat = dst(b, type=1, axis=2, norm="ortho")
        diag = self._diag_tiles.get(nb)
        if diag is None:
            diag = np.tile(self._diag, (1, nb))
            self._diag_tiles[nb] = diag
        # (B, ni, nj) -> (ni, B*nj): systems stay contiguous per slice.
        stacked = np.ascontiguousarray(b_hat.transpose(1, 0, 2)).reshape(ni, nb * nj)
        x_hat = thomas_multi_rhs(self._lower, diag, self._upper, stacked)
        x_hat = np.ascontiguousarray(x_hat.reshape(ni, nb, nj).transpose(1, 0, 2))
        return idst(x_hat, type=1, axis=2, norm="ortho")
