"""Plasma shape parameters — EFIT's "a-file" scalar outputs.

Besides the g-file, EFIT reports the scalar geometry of each time slice:
major/minor radius, elongation, upper/lower triangularity, and the
geometric axis.  All derive from the last-closed-flux-surface contour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.contours import FluxSurface
from repro.errors import BoundaryError

__all__ = ["ShapeParameters"]


@dataclass(frozen=True)
class ShapeParameters:
    """Standard scalar shape descriptors of a flux surface."""

    r_geo: float  # geometric major radius (R_max + R_min) / 2
    a_minor: float  # minor radius (R_max - R_min) / 2
    kappa: float  # elongation (Z_max - Z_min) / 2a
    delta_upper: float  # upper triangularity
    delta_lower: float  # lower triangularity
    r_inner: float
    r_outer: float
    z_top: float
    z_bottom: float

    @property
    def aspect_ratio(self) -> float:
        return self.r_geo / self.a_minor

    @property
    def delta(self) -> float:
        """Average triangularity."""
        return 0.5 * (self.delta_upper + self.delta_lower)

    @classmethod
    def from_surface(cls, surface: FluxSurface) -> "ShapeParameters":
        """Measure a traced surface.

        Triangularity is ``(R_geo - R_at_Zmax) / a`` (upper) and the
        analogous lower quantity — the standard definitions.
        """
        r, z = surface.r, surface.z
        if r.size < 8:
            raise BoundaryError("surface too coarse for shape analysis")
        r_outer = float(r.max())
        r_inner = float(r.min())
        r_geo = 0.5 * (r_outer + r_inner)
        a = 0.5 * (r_outer - r_inner)
        if a <= 0.0:
            raise BoundaryError("degenerate surface (zero minor radius)")
        i_top = int(np.argmax(z))
        i_bot = int(np.argmin(z))
        z_top = float(z[i_top])
        z_bot = float(z[i_bot])
        kappa = (z_top - z_bot) / (2.0 * a)
        delta_u = (r_geo - float(r[i_top])) / a
        delta_l = (r_geo - float(r[i_bot])) / a
        return cls(
            r_geo=r_geo,
            a_minor=a,
            kappa=kappa,
            delta_upper=delta_u,
            delta_lower=delta_l,
            r_inner=r_inner,
            r_outer=r_outer,
            z_top=z_top,
            z_bottom=z_bot,
        )
