"""On-disk persistence of Green tables and edge operators.

Building the boundary Green tables is O(N^3) work (seconds at 257^2,
tens of seconds at 513^2) and the low-rank edge factorisation adds an
SVD per Z offset on top — both depend only on the grid geometry, never
on the shot.  When ``REPRO_TABLE_CACHE_DIR`` points at a directory,
this module persists each artefact there as a ``.npz`` keyed on the
grid's :meth:`~repro.efit.grid.RZGrid.geometry_hash` (plus method and
tolerance for operators), so repeated runs — and most importantly CI
jobs restoring an ``actions/cache`` entry — skip the rebuild entirely.

The layer is strictly fail-soft: an unset variable disables it, an
unreadable or stale file falls back to building, and a write failure is
swallowed (the in-memory result is still returned).  Files carry a
format version in their name so a layout change can never deserialise
garbage into a fit.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import re
from pathlib import Path

import numpy as np

from repro.efit.grid import RZGrid

__all__ = [
    "CACHE_DIR_ENV",
    "DISK_FORMAT_VERSION",
    "cache_dir",
    "table_path",
    "operator_path",
    "load_tables",
    "store_tables",
    "load_edge_operator",
    "store_edge_operator",
]

#: Environment variable naming the cache directory (unset = disabled).
CACHE_DIR_ENV = "REPRO_TABLE_CACHE_DIR"

#: Bumped whenever the serialised layout changes; part of every file
#: name, so old cache entries are simply never matched.
DISK_FORMAT_VERSION = 1


def cache_dir() -> Path | None:
    """The configured cache directory, or ``None`` when disabled."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(raw) if raw else None


def _slug(text: str) -> str:
    """File-name-safe form of a method/tolerance tag."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


def table_path(grid: RZGrid) -> Path | None:
    """Where the Green tables for ``grid`` live on disk (None = disabled)."""
    root = cache_dir()
    if root is None:
        return None
    return root / f"greens-v{DISK_FORMAT_VERSION}-{grid.geometry_hash()}.npz"


def operator_path(grid: RZGrid, method: str, tol: float) -> Path | None:
    """Where the edge operator for ``(grid, method, tol)`` lives on disk.

    Keyed on the *inputs* of the build (not the resulting variant tag,
    which embeds the discovered rank and is unknowable before the SVD).
    """
    root = cache_dir()
    if root is None:
        return None
    tag = _slug(f"{method}-tol{tol:g}")
    return (
        root
        / f"edgeop-v{DISK_FORMAT_VERSION}-{grid.geometry_hash()}-{tag}.npz"
    )


def _load_npz(path: Path | None) -> dict[str, np.ndarray] | None:
    if path is None or not path.is_file():
        return None
    try:
        with np.load(path) as payload:
            return {name: payload[name] for name in payload.files}
    except (OSError, ValueError, KeyError, EOFError):
        return None  # damaged entry: rebuild


#: Process-local sequence making each temp file name unique: two threads
#: in one process (concurrent serve sessions, batch workers) share a pid,
#: so the pid alone is not a safe key.  ``itertools.count`` increments
#: atomically under the GIL.
_TMP_SEQUENCE = itertools.count()


def _store_npz(path: Path | None, arrays: dict[str, np.ndarray]) -> bool:
    if path is None:
        return False
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}-{next(_TMP_SEQUENCE)}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)  # atomic: a concurrent reader never sees a torn file
        return True
    except OSError:
        with contextlib.suppress(OSError):
            tmp.unlink(missing_ok=True)
        return False
    except BaseException:
        # Non-OSError failures (bad array payload, interrupt) are not
        # fail-soft cases — propagate them, but never leave the torn
        # temp file behind (and never let the cleanup mask them).
        with contextlib.suppress(OSError):
            tmp.unlink(missing_ok=True)
        raise


def load_tables(grid: RZGrid):
    """Cached :class:`~repro.efit.tables.BoundaryGreensTables`, or None."""
    from repro.efit.tables import BoundaryGreensTables

    arrays = _load_npz(table_path(grid))
    if arrays is None or "gpc" not in arrays:
        return None
    gpc = arrays["gpc"]
    if gpc.shape != (grid.nw, grid.nh, grid.nw) or gpc.dtype != np.float64:
        return None  # geometry-hash collision or corrupt entry
    return BoundaryGreensTables(grid=grid, gpc=gpc)


def store_tables(tables) -> bool:
    """Persist freshly built tables; returns whether a file was written."""
    return _store_npz(table_path(tables.grid), {"gpc": tables.gpc})


def load_edge_operator(tables, method: str, tol: float):
    """Cached :class:`~repro.efit.operators.EdgeOperator`, or None.

    ``tables`` (not just the grid) is required because the fp64 Toeplitz
    form aliases the Green table rather than storing its own copy.
    """
    from repro.efit.operators import edge_operator_from_arrays
    from repro.errors import OperatorError

    arrays = _load_npz(operator_path(tables.grid, method, tol))
    if arrays is None:
        return None
    try:
        return edge_operator_from_arrays(
            tables.grid, method, arrays, gpc=tables.gpc
        )
    except (OperatorError, KeyError, ValueError, IndexError):
        return None  # stale layout: rebuild


def store_edge_operator(op, tol: float) -> bool:
    """Persist a structured operator; dense is never written (it is a
    cheap gather from tables already covered by :func:`store_tables`)."""
    if op.method == "dense":
        return False
    return _store_npz(operator_path(op.grid, op.method, tol), op.to_arrays())
