"""Synthetic measurement generation: the DIII-D shot #186610 analog.

The paper's workload is one time slice of DIII-D shot #186610 at 2.4 s.
That discharge's raw magnetics are not available here, so
:func:`synthetic_shot_186610` builds the closest synthetic equivalent (see
DESIGN.md): a DIII-D-scale machine, a converged ground-truth equilibrium
with ~1 MA of plasma current, and the full diagnostic complement measured
from it with realistic noise.  The reconstruction workload — grid sizes,
operation mix, iteration counts — is what the performance study exercises,
and it is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.efit.basis import PolynomialBasis
from repro.efit.diagnostics import DiagnosticSet
from repro.efit.forward import ForwardEquilibrium, design_coil_currents, solve_forward
from repro.efit.grid import RZGrid
from repro.efit.machine import Tokamak, diiid_like_machine
from repro.efit.profiles import ProfileCoefficients
from repro.errors import MeasurementError

__all__ = [
    "MeasurementSet",
    "SyntheticShot",
    "measure_equilibrium",
    "synthetic_shot_186610",
    "synthetic_solovev_shot",
]


@dataclass(frozen=True)
class MeasurementSet:
    """One time slice's worth of magnetic data.

    Values are ordered exactly as :meth:`DiagnosticSet.response_to_grid`
    rows: flux loops, probes, then the plasma-current Rogowski.
    """

    values: np.ndarray
    uncertainties: np.ndarray
    coil_currents: np.ndarray
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        v = np.asarray(self.values, dtype=float)
        u = np.asarray(self.uncertainties, dtype=float)
        if v.ndim != 1 or v.shape != u.shape:
            raise MeasurementError("values/uncertainties must be matching 1-D arrays")
        if len(self.names) != v.size:
            raise MeasurementError("names length mismatch")
        if np.any(u <= 0.0):
            raise MeasurementError("uncertainties must be positive")
        coils = np.asarray(self.coil_currents, dtype=float)
        # Sensor dropouts arrive as NaN/inf; reject them at the boundary of
        # the library rather than letting them poison the least squares.
        if not np.all(np.isfinite(v)):
            raise MeasurementError("non-finite measurement values (railed/dropped channel?)")
        if not np.all(np.isfinite(u)):
            raise MeasurementError("non-finite measurement uncertainties")
        if not np.all(np.isfinite(coils)):
            raise MeasurementError("non-finite coil currents")
        object.__setattr__(self, "values", v)
        object.__setattr__(self, "uncertainties", u)
        object.__setattr__(self, "coil_currents", coils)

    @property
    def n_measurements(self) -> int:
        return int(self.values.size)

    @property
    def ip(self) -> float:
        """The Rogowski (total plasma current) reading — always last."""
        return float(self.values[-1])


@dataclass(frozen=True)
class SyntheticShot:
    """A complete synthetic workload: machine + truth + data."""

    machine: Tokamak
    diagnostics: DiagnosticSet
    grid: RZGrid
    truth: ForwardEquilibrium
    measurements: MeasurementSet
    name: str = "186610"

    @property
    def label(self) -> str:
        return f"synthetic-{self.name}@{self.grid.nw}x{self.grid.nh}"


def measure_equilibrium(
    machine: Tokamak,
    diagnostics: DiagnosticSet,
    grid: RZGrid,
    equilibrium: ForwardEquilibrium,
    *,
    noise: float,
    seed: int,
) -> MeasurementSet:
    """Evaluate every diagnostic on the ground truth and add noise.

    The public entry point scenario shot factories build on: per-class
    uncertainty floors (flux loops, probes, MSE, Rogowski), deterministic
    noise from ``seed``, and the :class:`MeasurementSet` row ordering the
    response assembly expects.
    """
    g_grid = diagnostics.response_to_grid(grid)
    g_coils = diagnostics.response_to_coils(machine)
    exact = g_grid @ grid.flatten(equilibrium.pcurr) + g_coils @ equilibrium.coil_currents
    if equilibrium.vessel_currents is not None and machine.n_vessel:
        exact = exact + diagnostics.response_to_vessel(machine) @ equilibrium.vessel_currents

    n_fl = len(diagnostics.flux_loops)
    n_mp = len(diagnostics.probes)
    n_mse = len(diagnostics.mse)
    sigma = np.empty(exact.size)
    # Per-class floors: a fraction of the signal scale of that class.  The
    # uncertainty floor stays positive even for noise-free data, so the
    # weighted fit remains well-defined.
    eff = max(noise, 1e-9)
    fl_scale = max(float(np.abs(exact[:n_fl]).max()), 1e-6)
    mp_scale = max(float(np.abs(exact[n_fl : n_fl + n_mp]).max()), 1e-8)
    sigma[:n_fl] = eff * fl_scale
    sigma[n_fl : n_fl + n_mp] = eff * mp_scale
    if n_mse:
        mse_slice = exact[n_fl + n_mp : n_fl + n_mp + n_mse]
        mse_scale = max(float(np.abs(mse_slice).max()), 1e-8)
        sigma[n_fl + n_mp : n_fl + n_mp + n_mse] = eff * mse_scale
    sigma[-1] = max(eff * abs(exact[-1]), 1.0)  # Rogowski: tight

    rng = np.random.default_rng(seed)
    values = exact + rng.normal(0.0, sigma) if noise > 0 else exact.copy()
    return MeasurementSet(
        values=values,
        uncertainties=sigma,
        coil_currents=equilibrium.coil_currents.copy(),
        names=tuple(diagnostics.names),
    )


@lru_cache(maxsize=8)
def _cached_shot(n: int, noise: float, seed: int, n_mse: int, eddy_ka: float) -> SyntheticShot:
    machine = diiid_like_machine()
    grid = machine.make_grid(n)
    pp_basis = PolynomialBasis(2)
    ffp_basis = PolynomialBasis(2)
    # Peaked p' and FF', scaled so the pressure and poloidal-current terms
    # carry comparable shares of J_phi (p' ~ 1e5 Pa/Wb vs FF' ~ O(1) in SI).
    truth_profiles = ProfileCoefficients(
        pp_basis, ffp_basis, alpha=np.array([2.0e5, -1.8e5]), beta=np.array([0.55, -0.45])
    )
    vessel_currents = None
    if eddy_ka:
        # A smooth, up-down-symmetric eddy pattern (ramp-induced image
        # currents concentrate on the outboard wall).
        theta = np.arctan2(
            np.array([v.z for v in machine.vessel]),
            np.array([v.r for v in machine.vessel]) - 1.69,
        )
        vessel_currents = eddy_ka * 1e3 * (0.6 + 0.4 * np.cos(theta))
    equilibrium = solve_forward(
        machine, grid, truth_profiles, ip=1.0e6, vessel_currents=vessel_currents
    )
    diagnostics = DiagnosticSet.for_machine(machine, n_mse=n_mse)
    measurements = measure_equilibrium(
        machine, diagnostics, grid, equilibrium, noise=noise, seed=seed
    )
    return SyntheticShot(
        machine=machine,
        diagnostics=diagnostics,
        grid=grid,
        truth=equilibrium,
        measurements=measurements,
    )


#: Backwards-compatible private alias (historical internal name).
_measure = measure_equilibrium


def synthetic_shot_186610(
    n: int = 65,
    *,
    noise: float = 1e-3,
    seed: int = 186610,
    n_mse: int = 0,
    eddy_ka: float = 0.0,
) -> SyntheticShot:
    """The reproduction's stand-in for DIII-D shot #186610 at 2.4 s.

    Parameters
    ----------
    n:
        Grid size per direction (65, 129, 257, 513 in the paper).
    noise:
        Relative 1-sigma noise added to each diagnostic class.
    seed:
        RNG seed — the default makes the shot fully deterministic.
    n_mse:
        Optional motional-Stark-effect channels on the outboard midplane
        (0 = classic magnetics-only EFIT, the paper's configuration).
    eddy_ka:
        Scale [kA] of vessel eddy currents flowing during the slice
        (0 = quiescent flat-top).  Nonzero values exercise the
        vessel-current fitting of :class:`~repro.efit.fitting.EfitSolver`.
    """
    if n < 17:
        raise MeasurementError("grid too coarse for a meaningful reconstruction")
    return _cached_shot(n, noise, seed, n_mse, eddy_ka)


@lru_cache(maxsize=4)
def _cached_solovev_shot(
    n: int, noise: float, seed: int, elongation: float, triangularity: float
) -> SyntheticShot:
    from repro.efit.boundary import find_boundary
    from repro.efit.pflux import PfluxVectorized
    from repro.efit.solovev import SolovevEquilibrium
    from repro.efit.solvers import make_solver
    from repro.efit.tables import cached_boundary_tables

    r0, minor = 1.69, 0.5
    machine = diiid_like_machine()
    grid = machine.make_grid(n)
    analytic = SolovevEquilibrium.shaped(
        r0=r0, minor_radius=minor, elongation=elongation, triangularity=triangularity
    )
    # Ground-truth node currents: the analytic J_phi inside the psi = 0
    # separatrix (clipped to the limiter), rescaled to exactly ip.
    inside = (analytic.psi_grid(grid) > 0.0) & machine.limiter.contains(
        grid.rr, grid.zz
    )
    pcurr = np.where(inside, analytic.j_phi(grid.rr, grid.zz) * grid.cell_area, 0.0)
    ip = 1.0e6
    pcurr *= ip / pcurr.sum()
    coil_currents = design_coil_currents(
        machine,
        r0=r0,
        minor_radius=minor,
        elongation=elongation,
        triangularity=triangularity,
        ip=ip,
    )
    # Truth flux on the grid: plasma contribution via the pflux_ pipeline
    # (boundary Greens + Dirichlet solve) plus the coil vacuum flux.
    tables = cached_boundary_tables(grid)
    pflux = PfluxVectorized(grid, tables, make_solver("dst", grid))
    psi = pflux.compute(pcurr, machine.psi_from_coils(grid, coil_currents))
    boundary = find_boundary(grid, psi, machine.limiter, sign=1)
    profiles = ProfileCoefficients(
        PolynomialBasis(1),
        PolynomialBasis(1),
        alpha=np.array([analytic.pprime]),
        beta=np.array([analytic.ffprime]),
    )
    truth = ForwardEquilibrium(
        grid=grid,
        psi=psi,
        pcurr=pcurr,
        boundary=boundary,
        profiles=profiles,
        coil_currents=coil_currents,
        ip=ip,
        iterations=0,
        residual=0.0,
    )
    diagnostics = DiagnosticSet.for_machine(machine)
    measurements = measure_equilibrium(
        machine, diagnostics, grid, truth, noise=noise, seed=seed
    )
    return SyntheticShot(
        machine=machine,
        diagnostics=diagnostics,
        grid=grid,
        truth=truth,
        measurements=measurements,
        name="solovev",
    )


def synthetic_solovev_shot(
    n: int = 65,
    *,
    noise: float = 1e-3,
    seed: int = 20260806,
    elongation: float = 1.3,
    triangularity: float = 0.2,
) -> SyntheticShot:
    """A Solov'ev-sourced workload: analytic truth, full reconstruction.

    Unlike :func:`synthetic_shot_186610` (whose ground truth is itself a
    numeric forward solve), the current density here comes from a
    closed-form :class:`~repro.efit.solovev.SolovevEquilibrium`, so the
    golden-regression suite has a second, independently derived workload.
    The default shape is chosen mildly elongated — a free-boundary
    reconstruction of a strongly shaped Solov'ev plasma does not converge
    under plain Picard iteration.
    """
    if n < 17:
        raise MeasurementError("grid too coarse for a meaningful reconstruction")
    return _cached_solovev_shot(n, noise, seed, elongation, triangularity)
