"""Green functions of the Grad-Shafranov operator: circular-filament fields.

The free-space Green function of ``Delta*`` is the poloidal flux (per radian
of toroidal angle) produced at an observation point ``(R, Z)`` by a unit
toroidal current filament at ``(Rs, Zs)``:

.. math::

    G_\\psi(R, Z; R_s, Z_s) = \\frac{\\mu_0}{2\\pi} \\sqrt{R R_s}\\,
        \\frac{(2 - k^2) K(k) - 2 E(k)}{k},
    \\qquad
    k^2 = \\frac{4 R R_s}{(R + R_s)^2 + (Z - Z_s)^2}

with ``K``/``E`` the complete elliptic integrals.  EFIT builds all of its
machinery on this: the boundary flux sums inside ``pflux_`` (the paper's
O(N^3) kernel), the coil vacuum-flux tables, and every magnetic-diagnostic
response function (``green_``).

The magnetic-field kernels ``greens_br``/``greens_bz`` are the analytic
derivatives (``Br = -psi_Z / R``, ``Bz = psi_R / R``) and are used for the
magnetic-probe responses.

All functions broadcast over NumPy arrays and are pure.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ellipe, ellipkm1

from repro.errors import GreensError
from repro.utils.constants import MU0, TWO_PI

__all__ = [
    "greens_psi",
    "greens_br",
    "greens_bz",
    "mutual_inductance",
    "self_flux_per_radian",
]

# Below this k'^2 = 1 - k^2 the filaments are effectively coincident and the
# logarithmic singularity of K makes the point-filament formula meaningless.
_COINCIDENT_KPRIME2 = 1e-14


def _geometry(r, z, rs, zs):
    """Common geometric factors, broadcast: returns (m, denom2) where
    m = k^2 and denom2 = (R+Rs)^2 + (Z-Zs)^2."""
    r = np.asarray(r, dtype=float)
    z = np.asarray(z, dtype=float)
    rs = np.asarray(rs, dtype=float)
    zs = np.asarray(zs, dtype=float)
    if np.any(r <= 0.0) or np.any(rs <= 0.0):
        raise GreensError("filament Green functions require R > 0 on both ends")
    denom2 = (r + rs) ** 2 + (z - zs) ** 2
    m = 4.0 * r * rs / denom2
    return r, z, rs, zs, m, denom2


def greens_psi(r, z, rs, zs):
    """Poloidal flux per radian at (r, z) from a unit filament at (rs, zs).

    Returns Wb/rad per ampere.  Raises :class:`GreensError` for coincident
    points — callers needing self terms use :func:`self_flux_per_radian`.
    """
    r, z, rs, zs, m, _ = _geometry(r, z, rs, zs)
    mk = np.minimum(m, 1.0)  # guard rounding above 1
    kprime2 = 1.0 - mk
    if np.any(kprime2 < _COINCIDENT_KPRIME2):
        raise GreensError("coincident filaments: use self_flux_per_radian for self terms")
    k = np.sqrt(mk)
    bigk = ellipkm1(kprime2)
    bige = ellipe(mk)
    return MU0 / TWO_PI * np.sqrt(r * rs) * ((2.0 - mk) * bigk - 2.0 * bige) / k


def greens_br(r, z, rs, zs):
    """Radial field Br at (r, z) from a unit filament at (rs, zs) [T/A].

    ``Br = -(1/R) d(psi)/dZ``.  Vanishes on the midplane of the source and
    as r -> 0.
    """
    r, z, rs, zs, m, denom2 = _geometry(r, z, rs, zs)
    mk = np.minimum(m, 1.0)
    kprime2 = 1.0 - mk
    if np.any(kprime2 < _COINCIDENT_KPRIME2):
        raise GreensError("coincident filaments in greens_br")
    beta = np.sqrt(denom2)
    alpha2 = (rs - r) ** 2 + (z - zs) ** 2
    bigk = ellipkm1(kprime2)
    bige = ellipe(mk)
    num = (rs**2 + r**2 + (z - zs) ** 2) * bige / alpha2 - bigk
    return MU0 / TWO_PI * (z - zs) / (r * beta) * num


def greens_bz(r, z, rs, zs):
    """Vertical field Bz at (r, z) from a unit filament at (rs, zs) [T/A].

    ``Bz = (1/R) d(psi)/dR``.
    """
    r, z, rs, zs, m, denom2 = _geometry(r, z, rs, zs)
    mk = np.minimum(m, 1.0)
    kprime2 = 1.0 - mk
    if np.any(kprime2 < _COINCIDENT_KPRIME2):
        raise GreensError("coincident filaments in greens_bz")
    beta = np.sqrt(denom2)
    alpha2 = (rs - r) ** 2 + (z - zs) ** 2
    bigk = ellipkm1(kprime2)
    bige = ellipe(mk)
    num = bigk + (rs**2 - r**2 - (z - zs) ** 2) * bige / alpha2
    return MU0 / TWO_PI / beta * num


def mutual_inductance(r, z, rs, zs):
    """Mutual inductance between two coaxial circular filaments [H].

    ``M = 2*pi * G_psi`` — the full flux linked per ampere.
    """
    return TWO_PI * greens_psi(r, z, rs, zs)


def self_flux_per_radian(rs, minor_radius):
    """Self flux per radian of a circular loop of wire radius ``minor_radius``.

    Uses the uniform-current self-inductance ``L = mu0 R (ln(8R/a) - 7/4)``;
    EFIT uses the same regularisation for grid-cell self terms, with an
    effective filament radius derived from the cell area.
    """
    rs = np.asarray(rs, dtype=float)
    a = np.asarray(minor_radius, dtype=float)
    if np.any(rs <= 0.0):
        raise GreensError("self flux requires R > 0")
    if np.any(a <= 0.0) or np.any(a >= rs):
        raise GreensError("minor radius must satisfy 0 < a < R")
    inductance = MU0 * rs * (np.log(8.0 * rs / a) - 1.75)
    return inductance / TWO_PI
