"""Assemble a complete g-EQDSK from a reconstruction.

Ties together the fit result, the traced flux surfaces (boundary contour
and q profile) and the machine description into the standard output file
every EFIT consumer expects.
"""

from __future__ import annotations

import numpy as np

from repro.efit.eqdsk import GEqdsk, write_geqdsk
from repro.efit.fitting import FitResult
from repro.efit.measurements import SyntheticShot
from repro.efit.qprofile import QProfile

__all__ = ["geqdsk_from_fit", "write_geqdsk"]


def geqdsk_from_fit(
    shot: SyntheticShot,
    result: FitResult,
    *,
    description: str | None = None,
    n_q_levels: int = 24,
) -> GEqdsk:
    """Build the g-file record for one reconstructed time slice.

    The q profile and the boundary contour come from flux-surface tracing
    on the reconstructed flux map; profiles are evaluated on EFIT's
    uniform psiN mesh of ``nw`` points.
    """
    g = shot.grid
    b = result.boundary
    f_vac = shot.machine.f_vacuum
    r_center = float(shot.machine.limiter.r.mean())
    qprof = QProfile.compute(
        g, result.psi, b, lambda s: f_vac, n_levels=n_q_levels
    )
    lcfs = qprof.surfaces[-1]
    x = np.linspace(0.0, 1.0, g.nw)
    psi_axis, psi_bnd = b.psi_axis, b.psi_boundary
    return GEqdsk(
        description=description or f"repro {shot.label}",
        nw=g.nw,
        nh=g.nh,
        rdim=g.rmax - g.rmin,
        zdim=g.zmax - g.zmin,
        rcentr=r_center,
        rleft=g.rmin,
        zmid=0.5 * (g.zmin + g.zmax),
        rmaxis=b.r_axis,
        zmaxis=b.z_axis,
        simag=psi_axis,
        sibry=psi_bnd,
        bcentr=f_vac / r_center,
        current=result.ip,
        fpol=np.sqrt(np.maximum(result.profiles.f_squared(x, psi_axis, psi_bnd, f_vac), 0.0)),
        pres=result.profiles.pressure(x, psi_axis, psi_bnd),
        ffprim=result.profiles.ffprime(x),
        pprime=result.profiles.pprime(x),
        psirz=result.psi,
        qpsi=qprof.on_uniform_grid(g.nw),
        rbbbs=lcfs.r,
        zbbbs=lcfs.z,
        rlim=shot.machine.limiter.r,
        zlim=shot.machine.limiter.z,
    )
