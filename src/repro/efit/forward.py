"""Forward (known-profile) free-boundary solve: ground-truth equilibria.

The synthetic workload generator needs a self-consistent equilibrium to
measure: a flux map ``psi`` that satisfies the Grad-Shafranov equation with
profiles *in the span of the fitting basis* and superposes correctly with
known PF-coil currents.  We obtain one by running the same Picard loop the
reconstruction uses, but with the profile coefficients *prescribed* (only
rescaled each iterate so the total plasma current hits the target) instead
of fitted.

Coil currents are designed first by a small least-squares problem that
shapes the vacuum field: total flux (coils + a filament estimate of the
plasma) should be constant along a target D-shaped boundary, which is the
textbook inverse shape-design problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.boundary import BoundaryResult, find_boundary
from repro.efit.current import basis_current_matrix
from repro.efit.greens import greens_psi
from repro.efit.grid import RZGrid
from repro.efit.machine import Tokamak, _miller_contour
from repro.efit.pflux import PfluxVectorized
from repro.efit.profiles import ProfileCoefficients
from repro.efit.solvers import make_solver
from repro.efit.tables import cached_boundary_tables
from repro.errors import ConvergenceError, FittingError

__all__ = ["ForwardEquilibrium", "design_coil_currents", "solve_forward"]


@dataclass(frozen=True)
class ForwardEquilibrium:
    """A converged ground-truth equilibrium."""

    grid: RZGrid
    psi: np.ndarray
    pcurr: np.ndarray
    boundary: BoundaryResult
    profiles: ProfileCoefficients
    coil_currents: np.ndarray
    ip: float
    iterations: int
    residual: float
    #: Prescribed vessel eddy currents [A] (zeros when quiescent).
    vessel_currents: np.ndarray | None = None


def design_coil_currents(
    machine: Tokamak,
    *,
    r0: float = 1.69,
    minor_radius: float = 0.55,
    # Vacuum-field shaping targets; the free-boundary plasma ends up more
    # elongated than the target (the quadrupole field acts on the full
    # profile), so aim low to land at DIII-D-like kappa ~ 1.8.
    elongation: float = 1.40,
    triangularity: float = 0.30,
    ip: float = 1.0e6,
    n_control: int = 40,
    ridge: float = 1e-3,
) -> np.ndarray:
    """Coil currents that hold a D-shaped plasma of current ``ip``.

    Solves ``min || psi_coils(x_m) + psi_filament(x_m) - const ||^2`` over
    control points ``x_m`` on the target boundary, with Tikhonov damping on
    the currents.  The constant is a free unknown.
    """
    if n_control < machine.n_coils:
        raise FittingError("need at least as many control points as coils")
    rc, zc = _miller_contour(r0, minor_radius, elongation, triangularity, n_control)
    # Plasma estimate: one filament at the magnetic axis.
    psi_plasma = ip * greens_psi(rc, zc, r0, 0.0)
    a = np.empty((n_control, machine.n_coils + 1))
    for k, coil in enumerate(machine.coils):
        a[:, k] = coil.psi_at(rc, zc)
    a[:, -1] = -1.0  # the unknown boundary constant
    b = -psi_plasma
    scale = np.linalg.norm(a[:, :-1], ord=2)
    reg = np.zeros((machine.n_coils, machine.n_coils + 1))
    reg[:, : machine.n_coils] = np.sqrt(ridge) * scale * np.eye(machine.n_coils)
    sol, *_ = np.linalg.lstsq(np.vstack([a, reg]), np.concatenate([b, np.zeros(machine.n_coils)]), rcond=None)
    return sol[: machine.n_coils]


def _initial_psi(
    machine: Tokamak, grid: RZGrid, coil_currents: np.ndarray, ip: float, r0: float
) -> np.ndarray:
    """Vacuum flux plus a single-filament plasma estimate (off-node)."""
    psi = machine.psi_from_coils(grid, coil_currents)
    # Offset the seed filament off the mesh nodes in R to avoid the Green
    # function singularity; keep it on the midplane for symmetry.
    rf = r0 + 0.37 * grid.dr
    psi += ip * greens_psi(grid.rr, grid.zz, rf, 0.0)
    return psi


def solve_forward(
    machine: Tokamak,
    grid: RZGrid,
    profiles: ProfileCoefficients,
    *,
    ip: float = 1.0e6,
    coil_currents: np.ndarray | None = None,
    vessel_currents: np.ndarray | None = None,
    tol: float = 1e-9,
    max_iters: int = 200,
    relax: float = 1.0,
    solver_name: str = "dst",
    symmetrize: bool = True,
) -> ForwardEquilibrium:
    """Picard iteration with prescribed profile shapes.

    Each iterate rescales the coefficient vector so the integrated plasma
    current equals ``ip`` — the forward analog of EFIT's Rogowski
    constraint — then recomputes the flux with ``pflux_``.

    ``symmetrize`` mirrors the flux about the midplane every iterate.
    Elongated plasmas are vertically unstable and a plain Picard loop has
    no feedback to hold them; for an up-down-symmetric machine the
    symmetric equilibrium is the physical one, so we project onto it (the
    forward analog of a vertical-position control loop).
    """
    if not (0.0 < relax <= 1.0):
        raise FittingError(f"relaxation parameter {relax} outside (0, 1]")
    if coil_currents is None:
        coil_currents = design_coil_currents(machine, ip=ip)
    coil_currents = np.asarray(coil_currents, dtype=float)

    tables = cached_boundary_tables(grid)
    solver = make_solver(solver_name, grid)
    pflux = PfluxVectorized(grid, tables, solver)
    psi_external = machine.psi_from_coils(grid, coil_currents)
    if vessel_currents is not None:
        psi_external = psi_external + machine.psi_from_vessel(grid, vessel_currents)

    r0_guess = float(machine.limiter.r.mean())
    psi = _initial_psi(machine, grid, coil_currents, ip, r0_guess)
    coeffs = profiles.as_vector()
    sign = 1 if ip >= 0 else -1

    boundary = None
    pcurr = np.zeros(grid.shape)
    residual = np.inf
    for iteration in range(1, max_iters + 1):
        boundary = find_boundary(grid, psi, machine.limiter, sign=sign)
        jmat = basis_current_matrix(
            grid, boundary.psin, boundary.mask, profiles.pp_basis, profiles.ffp_basis
        )
        pcurr_flat = jmat @ coeffs
        total = float(pcurr_flat.sum())
        if total == 0.0:
            raise ConvergenceError("prescribed profiles carry zero current")
        pcurr_flat *= ip / total
        pcurr = grid.unflatten(pcurr_flat)
        psi_new = pflux.compute(pcurr, psi_external)
        if symmetrize:
            psi_new = 0.5 * (psi_new + psi_new[:, ::-1])
        span = float(np.ptp(psi_new))
        if span == 0.0:
            raise ConvergenceError("flat flux map in forward solve")
        residual = float(np.max(np.abs(psi_new - psi)) / span)
        psi = (1.0 - relax) * psi + relax * psi_new
        if residual < tol:
            break
    else:
        raise ConvergenceError(
            f"forward solve: residual {residual:.3e} > tol {tol:.1e} after {max_iters} iterations"
        )

    final_coeffs = coeffs * (ip / float((jmat @ coeffs).sum()))
    fitted = ProfileCoefficients(
        profiles.pp_basis, profiles.ffp_basis,
        final_coeffs[: profiles.pp_basis.n_terms],
        final_coeffs[profiles.pp_basis.n_terms :],
    )
    return ForwardEquilibrium(
        grid=grid,
        psi=psi,
        pcurr=pcurr,
        boundary=boundary,
        profiles=fitted,
        coil_currents=coil_currents,
        ip=float(pcurr.sum()),
        iterations=iteration,
        residual=residual,
        vessel_currents=(
            np.asarray(vessel_currents, dtype=float) if vessel_currents is not None else None
        ),
    )
