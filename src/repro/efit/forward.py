"""Forward (known-profile) free-boundary solve: ground-truth equilibria.

The synthetic workload generator needs a self-consistent equilibrium to
measure: a flux map ``psi`` that satisfies the Grad-Shafranov equation with
profiles *in the span of the fitting basis* and superposes correctly with
known PF-coil currents.  We obtain one by running the same Picard loop the
reconstruction uses, but with the profile coefficients *prescribed* (only
rescaled each iterate so the total plasma current hits the target) instead
of fitted.

Coil currents are designed first by a small least-squares problem that
shapes the vacuum field: total flux (coils + a filament estimate of the
plasma) should be constant along a target D-shaped boundary, which is the
textbook inverse shape-design problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.boundary import BoundaryResult, find_boundary
from repro.efit.current import basis_current_matrix
from repro.efit.greens import greens_br, greens_bz, greens_psi
from repro.efit.grid import RZGrid
from repro.efit.machine import Tokamak, miller_contour
from repro.efit.pflux import PfluxVectorized
from repro.efit.profiles import ProfileCoefficients
from repro.efit.solvers import make_solver
from repro.efit.tables import cached_boundary_tables
from repro.errors import ConvergenceError, FittingError

__all__ = ["ForwardEquilibrium", "design_coil_currents", "solve_forward"]


@dataclass(frozen=True)
class ForwardEquilibrium:
    """A converged ground-truth equilibrium."""

    grid: RZGrid
    psi: np.ndarray
    pcurr: np.ndarray
    boundary: BoundaryResult
    profiles: ProfileCoefficients
    coil_currents: np.ndarray
    ip: float
    iterations: int
    residual: float
    #: Prescribed vessel eddy currents [A] (zeros when quiescent).
    vessel_currents: np.ndarray | None = None


def design_coil_currents(
    machine: Tokamak,
    *,
    r0: float = 1.69,
    minor_radius: float = 0.55,
    # Vacuum-field shaping targets; the free-boundary plasma ends up more
    # elongated than the target (the quadrupole field acts on the full
    # profile), so aim low to land at DIII-D-like kappa ~ 1.8.
    elongation: float = 1.40,
    triangularity: float = 0.30,
    elongation_lower: float | None = None,
    triangularity_lower: float | None = None,
    ip: float = 1.0e6,
    n_control: int = 40,
    ridge: float = 1e-3,
    x_points: tuple[tuple[float, float], ...] = (),
    x_point_weight: float = 4.0,
    filament_z: float = 0.0,
    force_balance_weight: float = 0.0,
) -> np.ndarray:
    """Coil currents that hold a D-shaped plasma of current ``ip``.

    Solves ``min || psi_coils(x_m) + psi_filament(x_m) - const ||^2`` over
    control points ``x_m`` on the target boundary, with Tikhonov damping on
    the currents.  The constant is a free unknown.

    ``elongation_lower``/``triangularity_lower`` make the target contour
    up-down asymmetric (single-null shaping); ``filament_z`` moves the
    single-filament plasma estimate off the midplane to match.

    ``x_points`` appends weighted field-null rows — ``Br = 0`` and
    ``Bz = 0`` of the total (coil + filament) field at each requested
    point — turning the isoflux fit into the diverted shape-design
    problem: a null on the target contour makes that flux surface the
    separatrix, with an X-point at the requested location.  The field
    rows are scaled by ``x_point_weight * minor_radius`` to be
    commensurate with the flux rows.

    ``force_balance_weight`` appends a vertical force-balance row:
    ``Br_coils = 0`` at the filament position (the filament exerts no
    net force on itself).  Without it an up-down-asymmetric design can
    place the *shape* correctly while the designed field still pushes
    the plasma vertically, so the nearest natural equilibrium sits far
    from the target and can only be held there by a persistent rigid
    shift of the current — a state outside the span of any flux-function
    current basis, which no reconstruction can then fit.
    """
    if n_control < machine.n_coils:
        raise FittingError("need at least as many control points as coils")
    rc, zc = miller_contour(
        r0,
        minor_radius,
        elongation,
        triangularity,
        n_control,
        kappa_lower=elongation_lower,
        delta_lower=triangularity_lower,
    )
    # Plasma estimate: one filament at the magnetic axis.
    psi_plasma = ip * greens_psi(rc, zc, r0, filament_z)
    a = np.empty((n_control, machine.n_coils + 1))
    for k, coil in enumerate(machine.coils):
        a[:, k] = coil.psi_at(rc, zc)
    a[:, -1] = -1.0  # the unknown boundary constant
    b = -psi_plasma
    null_rows: list[np.ndarray] = []
    null_rhs: list[float] = []
    for rx, zx in x_points:
        w = x_point_weight * minor_radius
        rx_arr, zx_arr = np.asarray(float(rx)), np.asarray(float(zx))
        row_br = np.empty(machine.n_coils + 1)
        row_bz = np.empty(machine.n_coils + 1)
        for k, coil in enumerate(machine.coils):
            row_br[k] = coil.br_at(rx_arr, zx_arr)
            row_bz[k] = coil.bz_at(rx_arr, zx_arr)
        row_br[-1] = row_bz[-1] = 0.0  # the boundary constant carries no field
        null_rows.extend([w * row_br, w * row_bz])
        null_rhs.extend(
            [
                -w * ip * float(greens_br(rx_arr, zx_arr, r0, filament_z)),
                -w * ip * float(greens_bz(rx_arr, zx_arr, r0, filament_z)),
            ]
        )
    if force_balance_weight > 0.0:
        w = force_balance_weight * minor_radius
        rf_arr, zf_arr = np.asarray(float(r0)), np.asarray(float(filament_z))
        row_fb = np.empty(machine.n_coils + 1)
        for k, coil in enumerate(machine.coils):
            row_fb[k] = coil.br_at(rf_arr, zf_arr)
        row_fb[-1] = 0.0
        null_rows.append(w * row_fb)
        null_rhs.append(0.0)
    if null_rows:
        a = np.vstack([a, *null_rows])
        b = np.concatenate([b, null_rhs])
    scale = np.linalg.norm(a[: n_control, :-1], ord=2)
    reg = np.zeros((machine.n_coils, machine.n_coils + 1))
    reg[:, : machine.n_coils] = np.sqrt(ridge) * scale * np.eye(machine.n_coils)
    sol, *_ = np.linalg.lstsq(np.vstack([a, reg]), np.concatenate([b, np.zeros(machine.n_coils)]), rcond=None)
    return sol[: machine.n_coils]


def _initial_psi(
    machine: Tokamak,
    grid: RZGrid,
    coil_currents: np.ndarray,
    ip: float,
    r0: float,
    z0: float = 0.0,
) -> np.ndarray:
    """Vacuum flux plus a single-filament plasma estimate (off-node)."""
    psi = machine.psi_from_coils(grid, coil_currents)
    # Offset the seed filament off the mesh nodes in R to avoid the Green
    # function singularity; keep it on the midplane for symmetry unless an
    # asymmetric start was requested.
    rf = r0 + 0.37 * grid.dr
    psi += ip * greens_psi(grid.rr, grid.zz, rf, z0)
    return psi


def solve_forward(
    machine: Tokamak,
    grid: RZGrid,
    profiles: ProfileCoefficients,
    *,
    ip: float = 1.0e6,
    coil_currents: np.ndarray | None = None,
    vessel_currents: np.ndarray | None = None,
    tol: float = 1e-9,
    max_iters: int = 200,
    relax: float = 1.0,
    relax_current: float = 1.0,
    edge_smooth: float = 0.0,
    solver_name: str = "dst",
    symmetrize: bool = True,
    hold_z_centroid: float | None = None,
    initial_z: float = 0.0,
) -> ForwardEquilibrium:
    """Picard iteration with prescribed profile shapes.

    Each iterate rescales the coefficient vector so the integrated plasma
    current equals ``ip`` — the forward analog of EFIT's Rogowski
    constraint — then recomputes the flux with ``pflux_``.

    ``relax_current`` blends the plasma-current distribution between
    iterates (the forward analog of the reconstruction's current
    relaxation).  Diverted equilibria need it: the in-plasma mask is a
    discrete cell set cut at the separatrix, so near an X-point the
    current jumps discontinuously as ``psiN = 1`` crosses grid nodes, and
    plain Picard falls into a mask limit cycle that no amount of flux
    under-relaxation can damp.

    ``edge_smooth`` tapers the current density to zero over the last
    ``edge_smooth`` of normalised flux (weight ``(1 - psiN)/edge_smooth``
    clipped to [0, 1]) — a finite-width edge falloff that makes the
    discrete current distribution *continuous* in the separatrix
    position, removing the mask limit cycle at its source.  Zero (the
    default) reproduces the sharp EFIT cutoff exactly.

    ``symmetrize`` mirrors the flux about the midplane every iterate.
    Elongated plasmas are vertically unstable and a plain Picard loop has
    no feedback to hold them; for an up-down-symmetric machine the
    symmetric equilibrium is the physical one, so we project onto it (the
    forward analog of a vertical-position control loop).

    Up-down-*asymmetric* plasmas (single-null) cannot be symmetrized;
    ``hold_z_centroid`` instead emulates the control system directly: each
    iterate the current distribution is rigidly shifted (half-gain,
    clamped to a few cells) so its vertical centroid tracks the prescribed
    target — the forward analog of the ``fitdelz`` feedback the
    reconstruction applies.  ``initial_z`` places the seed filament off
    the midplane to start the loop near the asymmetric solution.
    """
    if not (0.0 < relax <= 1.0):
        raise FittingError(f"relaxation parameter {relax} outside (0, 1]")
    if not (0.0 < relax_current <= 1.0):
        raise FittingError(f"current relaxation parameter {relax_current} outside (0, 1]")
    if not (0.0 <= edge_smooth < 1.0):
        raise FittingError(f"edge smoothing width {edge_smooth} outside [0, 1)")
    if symmetrize and hold_z_centroid is not None:
        raise FittingError("hold_z_centroid requires symmetrize=False")
    if coil_currents is None:
        coil_currents = design_coil_currents(machine, ip=ip)
    coil_currents = np.asarray(coil_currents, dtype=float)

    tables = cached_boundary_tables(grid)
    solver = make_solver(solver_name, grid)
    pflux = PfluxVectorized(grid, tables, solver)
    psi_external = machine.psi_from_coils(grid, coil_currents)
    if vessel_currents is not None:
        psi_external = psi_external + machine.psi_from_vessel(grid, vessel_currents)

    r0_guess = float(machine.limiter.r.mean())
    psi = _initial_psi(machine, grid, coil_currents, ip, r0_guess, initial_z)
    coeffs = profiles.as_vector()
    sign = 1 if ip >= 0 else -1

    boundary = None
    pcurr = np.zeros(grid.shape)
    residual = np.inf
    for iteration in range(1, max_iters + 1):
        boundary = find_boundary(grid, psi, machine.limiter, sign=sign)
        jmat = basis_current_matrix(
            grid, boundary.psin, boundary.mask, profiles.pp_basis, profiles.ffp_basis
        )
        pcurr_flat = jmat @ coeffs
        if edge_smooth > 0.0:
            pcurr_flat = pcurr_flat * grid.flatten(
                np.clip((1.0 - boundary.psin) / edge_smooth, 0.0, 1.0)
            )
        total = float(pcurr_flat.sum())
        if total == 0.0:
            raise ConvergenceError("prescribed profiles carry zero current")
        pcurr_flat *= ip / total
        pcurr = grid.unflatten(pcurr_flat)
        if hold_z_centroid is not None:
            # Vertical-position control: rigidly recenter the current
            # distribution toward the target centroid (half gain, clamped
            # to a few cells — the same linear-shift model as fitdelz).
            z_c = float((pcurr * grid.zz).sum() / pcurr.sum())
            delz = 0.5 * (hold_z_centroid - z_c)
            cap = 4.0 * grid.dz
            delz = float(np.clip(delz, -cap, cap))
            if delz != 0.0:
                pcurr = grid.shift_z(pcurr, delz)
        if relax_current != 1.0 and iteration > 1:
            pcurr = (1.0 - relax_current) * pcurr_prev + relax_current * pcurr
        pcurr_prev = pcurr
        psi_new = pflux.compute(pcurr, psi_external)
        if symmetrize:
            psi_new = 0.5 * (psi_new + psi_new[:, ::-1])
        span = float(np.ptp(psi_new))
        if span == 0.0:
            raise ConvergenceError("flat flux map in forward solve")
        residual = float(np.max(np.abs(psi_new - psi)) / span)
        psi = (1.0 - relax) * psi + relax * psi_new
        if residual < tol:
            break
    else:
        raise ConvergenceError(
            f"forward solve: residual {residual:.3e} > tol {tol:.1e} after {max_iters} iterations"
        )

    final_coeffs = coeffs * (ip / float((jmat @ coeffs).sum()))
    fitted = ProfileCoefficients(
        profiles.pp_basis, profiles.ffp_basis,
        final_coeffs[: profiles.pp_basis.n_terms],
        final_coeffs[profiles.pp_basis.n_terms :],
    )
    return ForwardEquilibrium(
        grid=grid,
        psi=psi,
        pcurr=pcurr,
        boundary=boundary,
        profiles=fitted,
        coil_currents=coil_currents,
        ip=float(pcurr.sum()),
        iterations=iteration,
        residual=residual,
        vessel_currents=(
            np.asarray(vessel_currents, dtype=float) if vessel_currents is not None else None
        ),
    )
