"""Analytic Solov'ev equilibria for verification.

With constant ``p'`` and ``FF'`` the Grad-Shafranov equation becomes linear
with polynomial right-hand side, ``Delta* psi = A R^2 + C``, and admits
closed-form solutions (Solov'ev 1968; Cerfon & Freidberg 2010).  We use the
particular solution ``A R^4/8 + C Z^2/2`` plus the polynomial null-space of
``Delta*``::

    {1, R^2, R^4 - 4 R^2 Z^2, Z, Z R^2}

These equilibria exercise every numerical piece — the FD operator, the
interior solvers, the boundary search and the current integrator — against
exact answers, which is how the test suite validates the substrate the
performance study runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.efit.grid import RZGrid
from repro.errors import SolverError
from repro.utils.constants import MU0

__all__ = ["SolovevEquilibrium"]

_N_HOMOGENEOUS = 5


def _homogeneous_terms(r: np.ndarray, z: np.ndarray) -> list[np.ndarray]:
    """The five polynomial null-space elements of Delta* we use."""
    one = np.ones_like(np.broadcast_arrays(r, z)[0], dtype=float)
    return [
        one,
        r**2 * one,
        (r**4 - 4.0 * r**2 * z**2) * one,
        z * one,
        z * r**2 * one,
    ]


@dataclass(frozen=True)
class SolovevEquilibrium:
    """``psi = A R^4/8 + C Z^2/2 + sum_k c_k h_k(R, Z)``.

    ``Delta* psi = A R^2 + C`` exactly, corresponding to the uniform source
    profiles ``mu0 p' = -A`` and ``FF' = -C``.
    """

    a_coef: float
    c_coef: float
    homogeneous: np.ndarray = field(default_factory=lambda: np.zeros(_N_HOMOGENEOUS))

    def __post_init__(self) -> None:
        h = np.asarray(self.homogeneous, dtype=float)
        if h.shape != (_N_HOMOGENEOUS,):
            raise SolverError(f"need {_N_HOMOGENEOUS} homogeneous coefficients")
        object.__setattr__(self, "homogeneous", h)

    # -- fields -----------------------------------------------------------------
    def psi(self, r: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Poloidal flux per radian at (r, z)."""
        r = np.asarray(r, dtype=float)
        z = np.asarray(z, dtype=float)
        val = self.a_coef * r**4 / 8.0 + self.c_coef * z**2 / 2.0
        for ck, hk in zip(self.homogeneous, _homogeneous_terms(r, z)):
            val = val + ck * hk
        return val

    def delta_star(self, r: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Exact ``Delta* psi`` — linear in ``R^2`` by construction."""
        r = np.asarray(r, dtype=float)
        z = np.asarray(z, dtype=float)
        return self.a_coef * r**2 + self.c_coef + 0.0 * z

    def j_phi(self, r: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Toroidal current density ``-Delta* psi / (mu0 R)`` [A/m^2]."""
        r = np.asarray(r, dtype=float)
        return -self.delta_star(r, z) / (MU0 * r)

    @property
    def pprime(self) -> float:
        """The (constant) ``dp/dpsi`` this equilibrium corresponds to."""
        return -self.a_coef / MU0

    @property
    def ffprime(self) -> float:
        """The (constant) ``F F'`` this equilibrium corresponds to."""
        return -self.c_coef

    # -- grid sampling -------------------------------------------------------------
    def psi_grid(self, grid: RZGrid) -> np.ndarray:
        return self.psi(grid.rr, grid.zz)

    def rhs_grid(self, grid: RZGrid) -> np.ndarray:
        return self.delta_star(grid.rr, grid.zz)

    # -- shaped factory --------------------------------------------------------------
    @classmethod
    def shaped(
        cls,
        r0: float = 1.69,
        minor_radius: float = 0.6,
        elongation: float = 1.6,
        triangularity: float = 0.4,
        a_coef: float = -0.2,
        c_coef: float = -0.1,
    ) -> "SolovevEquilibrium":
        """An up-down-symmetric D-shaped equilibrium.

        Coefficients of ``{1, R^2, R^4 - 4 R^2 Z^2}`` are chosen so that
        ``psi = 0`` on the outer equator ``(r0 + a, 0)``, the inner equator
        ``(r0 - a, 0)`` and the top ``(r0 - delta a, kappa a)``; the
        ``psi = 0`` contour is then a closed, D-shaped boundary.
        """
        if minor_radius <= 0 or r0 - minor_radius <= 0:
            raise SolverError("invalid minor radius for shaped equilibrium")
        points = [
            (r0 + minor_radius, 0.0),
            (r0 - minor_radius, 0.0),
            (r0 - triangularity * minor_radius, elongation * minor_radius),
        ]
        rows = []
        rhs = []
        for rp, zp in points:
            h = _homogeneous_terms(np.asarray(rp), np.asarray(zp))
            rows.append([float(h[0]), float(h[1]), float(h[2])])
            rhs.append(-(a_coef * rp**4 / 8.0 + c_coef * zp**2 / 2.0))
        try:
            c123 = np.linalg.solve(np.asarray(rows), np.asarray(rhs))
        except np.linalg.LinAlgError as exc:  # pragma: no cover - degenerate shapes
            raise SolverError(f"degenerate Solov'ev shaping points: {exc}") from exc
        homogeneous = np.array([c123[0], c123[1], c123[2], 0.0, 0.0])
        return cls(a_coef=a_coef, c_coef=c_coef, homogeneous=homogeneous)
