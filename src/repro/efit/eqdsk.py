"""G-EQDSK file I/O — EFIT's standard equilibrium output format.

EFIT writes each reconstructed time slice as a ``g`` file: a fixed-format
Fortran text layout with the grid description, 1-D profiles (``F``,
``p``, ``FF'``, ``p'``, ``q``) on a uniform psiN mesh, the 2-D flux map,
and the boundary/limiter contours.  Downstream transport and stability
codes consume these files, so a usable EFIT reproduction must produce
them.  The format is the de-facto standard 5-values-per-line ``%16.9e``
layout.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import EqdskError

__all__ = ["GEqdsk", "write_geqdsk", "read_geqdsk"]

_FMT = "%16.9E"
_PER_LINE = 5


@dataclass(frozen=True)
class GEqdsk:
    """In-memory representation of a g-file."""

    description: str
    nw: int
    nh: int
    rdim: float
    zdim: float
    rcentr: float
    rleft: float
    zmid: float
    rmaxis: float
    zmaxis: float
    simag: float  # psi at axis
    sibry: float  # psi at boundary
    bcentr: float
    current: float
    fpol: np.ndarray  # (nw,)
    pres: np.ndarray  # (nw,)
    ffprim: np.ndarray  # (nw,)
    pprime: np.ndarray  # (nw,)
    psirz: np.ndarray  # (nw, nh)
    qpsi: np.ndarray  # (nw,)
    rbbbs: np.ndarray
    zbbbs: np.ndarray
    rlim: np.ndarray
    zlim: np.ndarray

    def __post_init__(self) -> None:
        for name in ("fpol", "pres", "ffprim", "pprime", "qpsi"):
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.shape != (self.nw,):
                raise EqdskError(f"{name} must have length nw={self.nw}")
            object.__setattr__(self, name, arr)
        psirz = np.asarray(self.psirz, dtype=float)
        if psirz.shape != (self.nw, self.nh):
            raise EqdskError(f"psirz shape {psirz.shape} != ({self.nw}, {self.nh})")
        object.__setattr__(self, "psirz", psirz)
        rb = np.asarray(self.rbbbs, dtype=float)
        zb = np.asarray(self.zbbbs, dtype=float)
        rl = np.asarray(self.rlim, dtype=float)
        zl = np.asarray(self.zlim, dtype=float)
        if rb.shape != zb.shape or rl.shape != zl.shape:
            raise EqdskError("boundary/limiter r and z lengths differ")
        object.__setattr__(self, "rbbbs", rb)
        object.__setattr__(self, "zbbbs", zb)
        object.__setattr__(self, "rlim", rl)
        object.__setattr__(self, "zlim", zl)


def _write_1d(out: io.TextIOBase, values: np.ndarray) -> None:
    flat = np.asarray(values, dtype=float).ravel()
    # The e16.9 layout only leaves room for two exponent digits; a third
    # (|v| >= 1e100 or 0 < |v| < 1e-99) would overflow the field and glue
    # into its neighbour.  Such magnitudes are unphysical for equilibrium
    # data: flush denormal-tiny values to zero and reject the huge ones.
    if np.any(np.abs(flat) >= 1e100):
        raise EqdskError("value too large for the e16.9 g-file field")
    flat = np.where(np.abs(flat) < 1e-99, 0.0, flat)
    for start in range(0, flat.size, _PER_LINE):
        chunk = flat[start : start + _PER_LINE]
        out.write("".join(_FMT % v for v in chunk))
        out.write("\n")


def write_geqdsk(eq: GEqdsk, path: str | Path) -> None:
    """Write a g-file in the standard fixed layout."""
    path = Path(path)
    with path.open("w") as out:
        header = f"{eq.description[:48]:<48}"
        out.write(f"{header}{0:4d}{eq.nw:4d}{eq.nh:4d}\n")
        _write_1d(out, np.array([eq.rdim, eq.zdim, eq.rcentr, eq.rleft, eq.zmid]))
        _write_1d(out, np.array([eq.rmaxis, eq.zmaxis, eq.simag, eq.sibry, eq.bcentr]))
        _write_1d(out, np.array([eq.current, eq.simag, 0.0, eq.rmaxis, 0.0]))
        _write_1d(out, np.array([eq.zmaxis, 0.0, eq.sibry, 0.0, 0.0]))
        _write_1d(out, eq.fpol)
        _write_1d(out, eq.pres)
        _write_1d(out, eq.ffprim)
        _write_1d(out, eq.pprime)
        # psirz is written Z-fastest (Fortran column order over (i, j)).
        _write_1d(out, eq.psirz.T)
        _write_1d(out, eq.qpsi)
        out.write(f"{eq.rbbbs.size:5d}{eq.rlim.size:5d}\n")
        bdry = np.empty(2 * eq.rbbbs.size)
        bdry[0::2] = eq.rbbbs
        bdry[1::2] = eq.zbbbs
        _write_1d(out, bdry)
        lim = np.empty(2 * eq.rlim.size)
        lim[0::2] = eq.rlim
        lim[1::2] = eq.zlim
        _write_1d(out, lim)


# Exponents capped at two digits: the fixed e16.9 field cannot hold three,
# and an unbounded match would swallow the leading digit of a glued
# neighbouring field.
_NUMBER_RE = __import__("re").compile(
    r"[-+]?\d+\.\d*(?:[EeDd][-+]?\d{1,2})?|[-+]?\.\d+(?:[EeDd][-+]?\d{1,2})?|[-+]?\d+"
)


class _Scanner:
    """Pulls numbers from the fixed-width numeric body.

    Fortran's ``5e16.9`` layout glues a negative value to its neighbour
    (the minus sign eats the column separator), so whitespace splitting is
    not enough — a numeric regex recovers the individual fields.
    """

    def __init__(self, text: str) -> None:
        self.tokens = [t.replace("D", "E").replace("d", "e") for t in _NUMBER_RE.findall(text)]
        self.pos = 0

    def take(self, n: int) -> np.ndarray:
        if self.pos + n > len(self.tokens):
            raise EqdskError("g-file truncated")
        out = np.array([float(t) for t in self.tokens[self.pos : self.pos + n]])
        self.pos += n
        return out


def read_geqdsk(path: str | Path) -> GEqdsk:
    """Read a g-file written by :func:`write_geqdsk` (or any conformant one)."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise EqdskError(f"{path} is empty")
    header = lines[0]
    try:
        nh = int(header[-4:])
        nw = int(header[-8:-4])
    except ValueError as exc:
        raise EqdskError(f"malformed g-file header: {header!r}") from exc
    description = header[:48].strip()
    scan = _Scanner("\n".join(lines[1:]))
    rdim, zdim, rcentr, rleft, zmid = scan.take(5)
    rmaxis, zmaxis, simag, sibry, bcentr = scan.take(5)
    current, _, _, _, _ = scan.take(5)
    _, _, _, _, _ = scan.take(5)
    fpol = scan.take(nw)
    pres = scan.take(nw)
    ffprim = scan.take(nw)
    pprime = scan.take(nw)
    psirz = scan.take(nw * nh).reshape(nh, nw).T
    qpsi = scan.take(nw)
    # Boundary/limiter counts are on their own integer line; find them.
    counts = scan.take(2)
    nbbbs, limitr = int(counts[0]), int(counts[1])
    bdry = scan.take(2 * nbbbs) if nbbbs else np.empty(0)
    lim = scan.take(2 * limitr) if limitr else np.empty(0)
    return GEqdsk(
        description=description,
        nw=nw,
        nh=nh,
        rdim=rdim,
        zdim=zdim,
        rcentr=rcentr,
        rleft=rleft,
        zmid=zmid,
        rmaxis=rmaxis,
        zmaxis=zmaxis,
        simag=simag,
        sibry=sibry,
        bcentr=bcentr,
        current=current,
        fpol=fpol,
        pres=pres,
        ffprim=ffprim,
        pprime=pprime,
        psirz=psirz,
        qpsi=qpsi,
        rbbbs=bdry[0::2],
        zbbbs=bdry[1::2],
        rlim=lim[0::2],
        zlim=lim[1::2],
    )
