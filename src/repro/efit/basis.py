"""Polynomial basis functions for the ``p'`` and ``FF'`` source profiles.

EFIT parameterises the two free flux functions of the Grad-Shafranov source
as low-order polynomials in the normalised flux ``x = psiN`` (Lao et al.,
Nucl. Fusion 25 (1985) 1611):

.. math::

    p'(x)  = \\sum_k \\alpha_k b_k(x), \\qquad
    FF'(x) = \\sum_k \\beta_k b_k(x),
    \\qquad b_k(x) = x^k \\;\\;(\\text{or } x^k - x^{n} \\text{ edge-constrained})

The fitting step (``current_`` + least squares) solves for the coefficient
vectors; the basis itself is shared between the forward model, the response
matrices and the reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FittingError

__all__ = ["PolynomialBasis"]


@dataclass(frozen=True)
class PolynomialBasis:
    """A polynomial basis ``{b_0 ... b_{n-1}}`` on ``x in [0, 1]``.

    Parameters
    ----------
    n_terms:
        Number of basis functions (EFIT typically uses 2-4).
    vanish_at_edge:
        When True every basis function is ``x^k - x^n_terms`` so the fitted
        profile is identically zero at the plasma boundary (``x = 1``) —
        the standard EFIT edge constraint for ``p'``.
    """

    n_terms: int
    vanish_at_edge: bool = False

    def __post_init__(self) -> None:
        if self.n_terms < 1:
            raise FittingError("basis needs at least one term")

    def design_matrix(self, x: np.ndarray) -> np.ndarray:
        """Evaluate all basis functions at ``x``: shape ``x.shape + (n_terms,)``."""
        x = np.asarray(x, dtype=float)
        powers = np.stack([x**k for k in range(self.n_terms)], axis=-1)
        if self.vanish_at_edge:
            powers = powers - (x**self.n_terms)[..., None]
        return powers

    def evaluate(self, coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Profile value ``sum_k c_k b_k(x)``."""
        coeffs = np.asarray(coeffs, dtype=float)
        if coeffs.shape != (self.n_terms,):
            raise FittingError(
                f"coefficient vector has {coeffs.shape}, basis has {self.n_terms} terms"
            )
        return self.design_matrix(x) @ coeffs

    def antiderivative(self, coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``int_x^1 profile(t) dt`` — used to build pressure from ``p'``.

        Evaluated analytically term by term so no quadrature error enters
        the pressure profile.
        """
        coeffs = np.asarray(coeffs, dtype=float)
        if coeffs.shape != (self.n_terms,):
            raise FittingError("coefficient/basis size mismatch")
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for k, c in enumerate(coeffs):
            # int_x^1 t^k dt = (1 - x^{k+1}) / (k+1)
            out = out + c * (1.0 - x ** (k + 1)) / (k + 1)
        if self.vanish_at_edge:
            n = self.n_terms
            total = float(np.sum(coeffs))
            out = out - total * (1.0 - x ** (n + 1)) / (n + 1)
        return out

    def __len__(self) -> int:
        return self.n_terms
