"""The ``green_`` subroutine: response-matrix assembly and the linear fit.

Every Picard iteration re-assembles the measurement response to the
*current basis* of this iterate (the basis current matrix depends on
``psiN``, which moved), subtracts the known PF-coil contribution from the
data, and solves a weighted linear least-squares problem for the profile
coefficients.  This module owns both steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FittingError

__all__ = ["ResponseAssembly", "solve_weighted_lsq", "chi_squared"]


@dataclass(frozen=True)
class ResponseAssembly:
    """One iteration's linear system ``A c ~ d`` with weights ``w``."""

    matrix: np.ndarray  # (n_meas, n_coeffs)
    data: np.ndarray  # (n_meas,)
    weights: np.ndarray  # (n_meas,)

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2:
            raise FittingError("response matrix must be 2-D")
        n_meas = self.matrix.shape[0]
        if self.data.shape != (n_meas,) or self.weights.shape != (n_meas,):
            raise FittingError("data/weights length mismatch with response matrix")
        if np.any(self.weights < 0.0):
            raise FittingError("negative measurement weights")


def assemble_response(
    grid_response: np.ndarray,
    basis_currents: np.ndarray,
    coil_response: np.ndarray,
    coil_currents: np.ndarray,
    measured: np.ndarray,
    uncertainties: np.ndarray,
) -> ResponseAssembly:
    """Build the least-squares system for one Picard iterate.

    Parameters
    ----------
    grid_response:
        ``(n_meas, nw*nh)`` diagnostic response to unit node currents
        (precomputed once per grid in ``green_`` setup).
    basis_currents:
        ``(nw*nh, n_coeffs)`` node currents per unit coefficient from
        ``current_`` — the per-iteration part.
    coil_response:
        ``(n_meas, n_coils)`` response to unit coil currents.
    coil_currents:
        Known coil currents [A].
    measured, uncertainties:
        The measurement vector and its 1-sigma uncertainties.
    """
    n_meas, n_grid = grid_response.shape
    if basis_currents.shape[0] != n_grid:
        raise FittingError("grid response / basis current size mismatch")
    if measured.shape != (n_meas,) or uncertainties.shape != (n_meas,):
        raise FittingError("measurement vector length mismatch")
    if np.any(uncertainties <= 0.0):
        raise FittingError("uncertainties must be positive")
    # The O(n_meas * N^2) contraction: response of every diagnostic to every
    # basis function through the grid.  This is the dominant green_ cost.
    matrix = grid_response @ basis_currents
    data = measured - coil_response @ np.asarray(coil_currents, dtype=float)
    weights = 1.0 / np.asarray(uncertainties, dtype=float)
    return ResponseAssembly(matrix=matrix, data=data, weights=weights)


def solve_weighted_lsq(assembly: ResponseAssembly, *, ridge: float = 0.0) -> np.ndarray:
    """Solve ``min_c || w (A c - d) ||^2 + ridge ||c||^2``.

    A tiny Tikhonov term (scaled by the largest singular value) keeps the
    system well-posed when bases are nearly collinear early in the Picard
    loop, exactly the regularisation role EFIT's fitting weights play.
    """
    a = assembly.matrix * assembly.weights[:, None]
    d = assembly.data * assembly.weights
    if ridge < 0.0:
        raise FittingError("ridge must be non-negative")
    # Column equilibration: the p' and FF' columns differ in sensitivity by
    # ~5 orders of magnitude (SI units), so the ridge must act on *scaled*
    # coefficients or it silently crushes the weak columns.
    col_norms = np.linalg.norm(a, axis=0)
    col_norms[col_norms == 0.0] = 1.0
    a_scaled = a / col_norms
    if ridge > 0.0:
        n = a.shape[1]
        a_scaled = np.vstack([a_scaled, np.sqrt(ridge) * np.eye(n)])
        d = np.concatenate([d, np.zeros(n)])
    coeffs, *_ = np.linalg.lstsq(a_scaled, d, rcond=None)
    return coeffs / col_norms


def chi_squared(assembly: ResponseAssembly, coeffs: np.ndarray) -> float:
    """Weighted residual ``chi^2`` of a coefficient vector."""
    resid = (assembly.matrix @ coeffs - assembly.data) * assembly.weights
    return float(resid @ resid)
