"""A-file output: the scalar results record of one time slice.

Alongside the g-file flux map, EFIT writes an "a-file" of scalar results —
plasma current, axis position, shape, q95, beta_p, li, stored energy, fit
quality.  The historical a-file is a rigid Fortran record; we write the
same content as a self-describing ``key = value`` text block (one datum
per line, units in comments), which round-trips exactly and stays
greppable.  The quantity names follow EFIT's conventions (``aminor``,
``kappa``, ``betap``, ``ali``, ``wplasm`` ...).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path

from repro.efit.contours import trace_flux_surface
from repro.efit.fitting import FitResult
from repro.efit.globalparams import compute_global_parameters
from repro.efit.measurements import SyntheticShot
from repro.efit.qprofile import QProfile
from repro.efit.shape import ShapeParameters
from repro.errors import EqdskError

__all__ = ["AFile", "afile_from_fit", "write_afile", "read_afile"]

_UNITS = {
    "shot": "",
    "time_ms": "ms",
    "ipmeas": "A",
    "rmaxis": "m",
    "zmaxis": "m",
    "rgeo": "m",
    "aminor": "m",
    "kappa": "",
    "delta_upper": "",
    "delta_lower": "",
    "q95": "",
    "betap": "",
    "ali": "",
    "wplasm": "J",
    "volume": "m^3",
    "chisq": "",
    "iterations": "",
    "converged": "",
}


@dataclass(frozen=True)
class AFile:
    """Scalar results of one reconstructed time slice."""

    shot: int
    time_ms: float
    ipmeas: float
    rmaxis: float
    zmaxis: float
    rgeo: float
    aminor: float
    kappa: float
    delta_upper: float
    delta_lower: float
    q95: float
    betap: float
    ali: float
    wplasm: float
    volume: float
    chisq: float
    iterations: int
    converged: bool


def afile_from_fit(
    shot: SyntheticShot,
    result: FitResult,
    *,
    shot_number: int = 186610,
    time_ms: float = 2400.0,
) -> AFile:
    """Derive every a-file scalar from a reconstruction."""
    b = result.boundary
    lcfs = trace_flux_surface(shot.grid, b, 0.98)
    shape = ShapeParameters.from_surface(lcfs)
    glob = compute_global_parameters(
        shot.grid, result.psi, b, result.profiles, result.ip
    )
    f_vac = shot.machine.f_vacuum
    qprof = QProfile.compute(shot.grid, result.psi, b, lambda s: f_vac, n_levels=16)
    return AFile(
        shot=shot_number,
        time_ms=time_ms,
        ipmeas=result.ip,
        rmaxis=b.r_axis,
        zmaxis=b.z_axis,
        rgeo=shape.r_geo,
        aminor=shape.a_minor,
        kappa=shape.kappa,
        delta_upper=shape.delta_upper,
        delta_lower=shape.delta_lower,
        q95=qprof.q95,
        betap=glob.beta_poloidal,
        ali=glob.internal_inductance,
        wplasm=glob.stored_energy_joules,
        volume=glob.volume_m3,
        chisq=result.chi2,
        iterations=result.iterations,
        converged=result.converged,
    )


def write_afile(afile: AFile, path: str | Path) -> None:
    """Write the record as documented key = value lines."""
    lines = ["# repro a-file (scalar reconstruction results)"]
    for f in fields(AFile):
        value = getattr(afile, f.name)
        unit = _UNITS.get(f.name, "")
        comment = f"  # {unit}" if unit else ""
        if isinstance(value, bool):
            rendered = "true" if value else "false"
        elif isinstance(value, int):
            rendered = str(value)
        else:
            rendered = f"{value:.9e}"
        lines.append(f"{f.name} = {rendered}{comment}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_afile(path: str | Path) -> AFile:
    """Read a record written by :func:`write_afile`."""
    data: dict[str, str] = {}
    for line in Path(path).read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise EqdskError(f"malformed a-file line: {line!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        data[key] = value
    kwargs = {}
    for f in fields(AFile):
        if f.name not in data:
            raise EqdskError(f"a-file missing field {f.name!r}")
        raw = data[f.name]
        if f.type in ("int", int):
            kwargs[f.name] = int(raw)
        elif f.type in ("bool", bool):
            kwargs[f.name] = raw.lower() == "true"
        else:
            kwargs[f.name] = float(raw)
    return AFile(**kwargs)
