"""Global equilibrium parameters: beta_poloidal, internal inductance, W.

The scalar physics outputs EFIT reports for every time slice (a-file
columns), computed from the reconstructed fields by volume integration
over the plasma mask:

.. math::

    \\beta_p = \\frac{2 \\mu_0 \\langle p \\rangle_V}{B_{pa}^2}, \\qquad
    l_i = \\frac{\\langle B_p^2 \\rangle_V}{B_{pa}^2}, \\qquad
    W = \\tfrac{3}{2} \\int p\\, dV

with ``B_pa = mu0 Ip / L_p`` the average poloidal field on the
last-closed-flux-surface of perimeter ``L_p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.boundary import BoundaryResult
from repro.efit.contours import trace_flux_surface
from repro.efit.grid import RZGrid
from repro.efit.profiles import ProfileCoefficients
from repro.errors import BoundaryError
from repro.utils.constants import MU0, TWO_PI

__all__ = ["GlobalParameters", "compute_global_parameters"]


@dataclass(frozen=True)
class GlobalParameters:
    """Scalar physics summary of one equilibrium."""

    beta_poloidal: float
    internal_inductance: float
    stored_energy_joules: float
    volume_m3: float
    average_pressure_pa: float
    bp_average_tesla: float
    lcfs_perimeter_m: float


def compute_global_parameters(
    grid: RZGrid,
    psi: np.ndarray,
    boundary: BoundaryResult,
    profiles: ProfileCoefficients,
    ip: float,
) -> GlobalParameters:
    """Volume-integrate the reconstructed fields.

    ``dV = 2 pi R dA`` per cell; the poloidal field is
    ``B_p = |grad psi| / R`` (psi per radian).
    """
    if ip == 0.0:
        raise BoundaryError("global parameters undefined for zero plasma current")
    mask = boundary.mask
    if not mask.any():
        raise BoundaryError("empty plasma mask")

    dv = TWO_PI * grid.rr * grid.cell_area
    volume = float(dv[mask].sum())

    psin = np.clip(boundary.psin, 0.0, 1.0)
    pressure = profiles.pressure(psin, boundary.psi_axis, boundary.psi_boundary)
    p_avg = float((pressure * dv)[mask].sum() / volume)
    stored = 1.5 * float((pressure * dv)[mask].sum())

    dpsi_dr = np.gradient(psi, grid.dr, axis=0)
    dpsi_dz = np.gradient(psi, grid.dz, axis=1)
    bp2 = (dpsi_dr**2 + dpsi_dz**2) / grid.rr**2
    bp2_avg = float((bp2 * dv)[mask].sum() / volume)

    lcfs = trace_flux_surface(grid, boundary, 0.995)
    perimeter = lcfs.perimeter
    bpa = MU0 * abs(ip) / perimeter

    return GlobalParameters(
        beta_poloidal=2.0 * MU0 * p_avg / bpa**2,
        internal_inductance=bp2_avg / bpa**2,
        stored_energy_joules=stored,
        volume_m3=volume,
        average_pressure_pa=p_avg,
        bp_average_tesla=bpa,
        lcfs_perimeter_m=perimeter,
    )
