"""The ``fit_`` driver: EFIT's Picard equilibrium-reconstruction loop.

One ``fit_`` invocation performs a single Picard iterate built from the
paper's four subroutines (Section 2):

* ``steps_``   — axis/boundary search, normalised flux, convergence check;
* ``current_`` — basis current distribution on the grid;
* ``green_``   — response-matrix assembly and the weighted linear fit;
* ``pflux_``   — the flux solve (boundary Green sums + interior solve).

:class:`EfitSolver` repeats invocations until the maximum flux change
between iterates, normalised by the flux span, drops below ``tol``
(``eps < 1e-5`` in the paper).  Every region is timed through a
:class:`~repro.profiling.regions.RegionProfiler`, which is how the Figure 1
and Figure 6 pie charts are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.markers import hot_path
from repro.efit.boundary import BoundaryResult, find_boundary
from repro.efit.basis import PolynomialBasis
from repro.efit.current import basis_current_matrix
from repro.efit.diagnostics import DiagnosticSet
from repro.efit.greens import greens_psi
from repro.efit.grid import RZGrid
from repro.efit.machine import Tokamak
from repro.efit.measurements import MeasurementSet
from repro.efit.pflux import (
    PfluxBase,
    PfluxReference,
    PfluxStructured,
    PfluxVectorized,
)
from repro.efit.profiles import ProfileCoefficients
from repro.efit.response import assemble_response, chi_squared, solve_weighted_lsq
from repro.efit.solvers import make_solver
from repro.efit.tables import cached_boundary_tables
from repro.errors import BoundaryError, ConvergenceError, FittingError
from repro.obs.hooks import NULL_HOOKS, ObservationHooks
from repro.profiling.regions import RegionProfiler

__all__ = ["EfitSolver", "FitResult", "FitIterationRecord", "FitState", "GridStatics"]


@dataclass(frozen=True)
class GridStatics:
    """Precomputed per-(machine, grid) state for the fit hot path.

    Everything here depends only on the machine geometry and the mesh —
    not on the shot or the Picard iterate — yet the plain single-slice
    path rebuilds it every call: the limiter point-in-polygon mask twice
    per iterate, the densified limiter contour once per iterate and the
    coil flux tables twice per ``fit``.  The batch engine builds one
    :class:`GridStatics` per grid and threads it through
    :meth:`EfitSolver.start_fit` / :meth:`EfitSolver.iterate_pre`; the
    cached values are bitwise-identical to the recomputed ones, so using
    them changes no result.
    """

    #: ``limiter.contains(grid.rr, grid.zz)`` — the in-vessel grid mask.
    inside_limiter: np.ndarray
    #: Densified limiter contour ``(r, z)`` for the boundary-psi search.
    limiter_samples: tuple[np.ndarray, np.ndarray]
    #: Per-coil vacuum flux tables, shape ``(n_coils, nw, nh)``.
    coil_flux: np.ndarray

    @classmethod
    def build(cls, machine: Tokamak, grid: RZGrid, *, n_limiter_samples: int = 4) -> "GridStatics":
        """Precompute the static fit state for ``machine`` on ``grid``."""
        return cls(
            inside_limiter=machine.limiter.contains(grid.rr, grid.zz),
            limiter_samples=machine.limiter.sample_points(n_limiter_samples),
            coil_flux=machine.coil_flux_tables(grid),
        )


@dataclass
class FitState:
    """Mutable Picard state of one reconstruction in flight.

    Produced by :meth:`EfitSolver.start_fit` and advanced by
    :meth:`EfitSolver.iterate_pre` / :meth:`EfitSolver.iterate_post`;
    :meth:`EfitSolver.finish` turns it into a :class:`FitResult`.  The
    split exists so a batch engine can interleave many slices' iterates
    and compute all their flux solves in one batched ``pflux_`` call.
    """

    measurements: MeasurementSet
    psi: np.ndarray
    psi_external: np.ndarray
    sign: int
    coeffs: np.ndarray
    pcurr: np.ndarray
    profiler: RegionProfiler
    hooks: ObservationHooks = NULL_HOOKS
    vessel_currents: np.ndarray | None = None
    boundary: BoundaryResult | None = None
    chi2: float = np.inf
    residual: float = np.inf
    iteration: int = 0
    converged: bool = False
    #: Last iteration (inclusive) forced onto the fixed warm-up current
    #: shape.  The solver's ``n_warmup`` for a cold start; 0 for a trusted
    #: warm start, so a converged ``psi_initial`` can converge immediately.
    warmup_until: int = 0
    #: True while the supplied ``psi_initial`` is trusted.  Revoked by the
    #: divergence guard in :meth:`EfitSolver.iterate_post`, which falls
    #: back to a cold warm-up starting at the current iteration.
    warm_start: bool = False
    history: list[FitIterationRecord] = field(default_factory=list)


@dataclass(frozen=True)
class FitIterationRecord:
    """Per-iteration diagnostics of the Picard loop."""

    iteration: int
    residual: float
    psi_axis: float
    psi_boundary: float
    chi2: float
    coefficients: np.ndarray


@dataclass(frozen=True)
class FitResult:
    """A converged (or halted) reconstruction."""

    psi: np.ndarray
    pcurr: np.ndarray
    profiles: ProfileCoefficients
    boundary: BoundaryResult
    converged: bool
    iterations: int
    residual: float
    chi2: float
    history: tuple[FitIterationRecord, ...] = field(default_factory=tuple)
    #: Fitted vessel eddy currents [A] (None when not fitted).
    vessel_currents: np.ndarray | None = None
    #: Whether the slice ran (and finished) on a trusted warm start.
    warm_start: bool = False

    @property
    def ip(self) -> float:
        """Total reconstructed plasma current [A]."""
        return float(self.pcurr.sum())


class EfitSolver:
    """Equilibrium reconstruction on a fixed machine + grid.

    Construction performs the one-time ``green_`` setup (boundary tables,
    diagnostic response matrices, interior-solver factorisation);
    :meth:`fit` then reconstructs any number of time slices.

    Parameters
    ----------
    pflux_impl:
        ``"vectorized"`` (default), ``"reference"`` (the pure-loop baseline
        — slow, small grids only), or any ready-made
        :class:`~repro.efit.pflux.PfluxBase` instance (the GPU-offloaded
        variants from :mod:`repro.core.offload` plug in here).
    boundary_method:
        Edge-flux operator representation for the boundary Green sums:
        ``"dense"`` (default — the exact historical path), or one of the
        compressed forms of :data:`repro.efit.operators.EDGE_METHODS`
        (``"toeplitz"``, ``"lowrank"``, ``"toeplitz-fp32"``,
        ``"lowrank-fp32"``) that beat the dense GEMM on 129^2+ grids.
        Mutually exclusive with a non-default ``pflux_impl``.
    profiler:
        Optional :class:`RegionProfiler`; regions ``steps_``, ``current_``,
        ``green_``, ``pflux_`` and ``other`` accumulate per ``fit_``
        invocation.
    hooks:
        Optional :class:`~repro.obs.hooks.ObservationHooks` (e.g.
        :class:`~repro.obs.hooks.TraceHooks`).  Mirrors the profiler
        regions as structured trace spans and emits one
        ``picard_iteration`` event per iterate with chi^2, residual and
        boundary attributes.  The default, ``NULL_HOOKS``, is free.
    """

    def __init__(
        self,
        machine: Tokamak,
        diagnostics: DiagnosticSet,
        grid: RZGrid,
        *,
        pp_basis: PolynomialBasis | None = None,
        ffp_basis: PolynomialBasis | None = None,
        solver_name: str = "dst",
        pflux_impl: str | PfluxBase = "vectorized",
        boundary_method: str = "dense",
        tol: float = 1e-5,
        max_iters: int = 100,
        relax: float = 1.0,
        relax_current: float = 0.5,
        n_warmup: int = 8,
        warm_start_guard: float = 0.25,
        fitdelz: bool = True,
        fit_vessel: bool = False,
        ridge: float = 1e-10,
        initial_filament_z: float | None = None,
        profiler: RegionProfiler | None = None,
        hooks: ObservationHooks | None = None,
    ) -> None:
        if not (0.0 < relax <= 1.0):
            raise FittingError(f"relaxation parameter {relax} outside (0, 1]")
        if not (0.0 < relax_current <= 1.0):
            raise FittingError(f"current relaxation {relax_current} outside (0, 1]")
        if tol <= 0.0:
            raise FittingError("tolerance must be positive")
        self.machine = machine
        self.diagnostics = diagnostics
        self.grid = grid
        self.pp_basis = pp_basis if pp_basis is not None else PolynomialBasis(2)
        self.ffp_basis = ffp_basis if ffp_basis is not None else PolynomialBasis(2)
        self.tol = tol
        self.max_iters = max_iters
        self.relax = relax
        self.relax_current = relax_current
        if n_warmup < 0:
            raise FittingError("n_warmup must be >= 0")
        self.n_warmup = n_warmup
        if warm_start_guard <= 0.0:
            raise FittingError("warm_start_guard must be positive")
        #: Residual above which a trusted warm start is declared divergent
        #: and the slice falls back to the cold warm-up current shape.
        self.warm_start_guard = warm_start_guard
        self.fitdelz = fitdelz
        self.ridge = ridge
        # Height of the seed filament in the default initial psi.  None
        # keeps the historical slightly-off-node offset (0.41 dz above the
        # midplane); up-down-asymmetric machines (single-null) should seed
        # near the expected current centroid or the Picard loop can settle
        # on a vertically displaced fixed point of the fitdelz feedback.
        self.initial_filament_z = initial_filament_z
        self.profiler = profiler if profiler is not None else RegionProfiler()
        self.hooks = hooks if hooks is not None else NULL_HOOKS

        # --- one-time green_ setup -------------------------------------------
        self.tables = cached_boundary_tables(grid)
        self.solver = make_solver(solver_name, grid)
        self.boundary_method = boundary_method
        if boundary_method != "dense":
            # The default keeps the historical PfluxVectorized path so
            # golden artifacts stay bit-identical; structured methods
            # route the boundary sums through a compressed operator.
            if isinstance(pflux_impl, PfluxBase) or pflux_impl != "vectorized":
                raise FittingError(
                    "pass either pflux_impl or boundary_method, not both"
                )
            from repro.efit.operators import cached_edge_operator

            self.pflux = PfluxStructured(
                grid,
                self.tables,
                self.solver,
                cached_edge_operator(self.tables, boundary_method),
            )
        elif isinstance(pflux_impl, PfluxBase):
            self.pflux = pflux_impl
        elif pflux_impl == "vectorized":
            self.pflux = PfluxVectorized(grid, self.tables, self.solver)
        elif pflux_impl == "reference":
            self.pflux = PfluxReference(grid, self.tables, self.solver)
        else:
            raise FittingError(f"unknown pflux implementation {pflux_impl!r}")
        self.grid_response = diagnostics.response_to_grid(grid)
        self.coil_response = diagnostics.response_to_coils(machine)
        #: Vessel eddy-current fitting (production EFIT's VESSEL option):
        #: adds one unknown current per wall segment to the linear fit.
        self.fit_vessel = fit_vessel and machine.n_vessel > 0
        if fit_vessel and machine.n_vessel == 0:
            raise FittingError("fit_vessel requested but the machine has no vessel segments")
        if self.fit_vessel:
            self.vessel_response = diagnostics.response_to_vessel(machine)
            self.vessel_flux_tables = machine.vessel_flux_tables(grid)

    @classmethod
    def for_scenario(
        cls,
        scenario,
        n: int = 65,
        *,
        shot=None,
        **overrides,
    ) -> "EfitSolver":
        """Build a solver configured for a registered scenario.

        ``scenario`` is a name from :func:`repro.scenarios.scenario_names`
        or a :class:`~repro.scenarios.Scenario` instance.  The scenario's
        ``solver_kwargs`` (e.g. the off-midplane seed filament an
        asymmetric single-null needs) are applied first; ``overrides``
        win on conflict.  Pass ``shot`` to reuse an already-built
        :class:`~repro.efit.measurements.SyntheticShot` instead of
        fetching the scenario's cached one at grid ``n``.
        """
        from repro.scenarios import get_scenario

        sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if shot is None:
            shot = sc.make_shot(n)
        kwargs = {**sc.solver_kwargs, **overrides}
        return cls(shot.machine, shot.diagnostics, shot.grid, **kwargs)

    # -- helpers ------------------------------------------------------------------
    def _shift_z(self, field: np.ndarray, delz: float) -> np.ndarray:
        """Shift a grid field vertically by ``delz`` metres (linear
        interpolation, zero fill) — ``f_new(z) = f(z - delz)``."""
        return self.grid.shift_z(field, delz)

    def _fit_delz(
        self,
        pcurr: np.ndarray,
        assembly,
        extra_prediction: np.ndarray | None = None,
    ) -> float:
        """EFIT's ``fitdelz``: the rigid vertical shift of the current
        distribution that best reduces the measurement residual.

        A one-parameter weighted least squares on top of the profile fit:
        ``delz = <w^2 u r> / <w^2 u u>`` with ``u`` the measurement
        response to ``d(pcurr)/dz`` and ``r`` the residual after the
        profile fit.  This is the vertical-stability feedback that keeps
        the Picard loop on the measured plasma position.
        """
        grid = self.grid
        dpc_dz = np.gradient(pcurr, grid.dz, axis=1)
        u = self.grid_response @ grid.flatten(dpc_dz)
        r = assembly.data - self.grid_response @ grid.flatten(pcurr)
        if extra_prediction is not None:
            r = r - extra_prediction
        w2 = assembly.weights**2
        denom = float(w2 @ (u * u))
        if denom == 0.0:
            return 0.0
        # Taylor: pcurr(z - delz) ~ pcurr - delz * d(pcurr)/dz, so the
        # physical shift to apply through _shift_z is the *negative* of the
        # fitted Taylor coefficient.
        delz = -float(w2 @ (u * r)) / denom
        # Clamp to a few cells per iteration: the shift model is linear.
        cap = 4.0 * grid.dz
        return float(np.clip(delz, -cap, cap))

    def _psi_from_coils(self, currents: np.ndarray, statics: GridStatics | None) -> np.ndarray:
        """Vacuum coil flux, from the statics tables when available (the
        tables are built identically either way, so the result is
        bitwise-independent of the path taken)."""
        if statics is not None:
            currents = np.asarray(currents, dtype=float)
            if currents.shape != (self.machine.n_coils,):
                raise FittingError(
                    f"need {self.machine.n_coils} coil currents, got shape {currents.shape}"
                )
            return np.tensordot(currents, statics.coil_flux, axes=1)
        return self.machine.psi_from_coils(self.grid, currents)

    def _initial_psi(
        self, measurements: MeasurementSet, statics: GridStatics | None = None
    ) -> np.ndarray:
        """Vacuum flux plus a filament estimate carrying the measured Ip."""
        grid = self.grid
        psi = self._psi_from_coils(measurements.coil_currents, statics)
        r0 = float(self.machine.limiter.r.mean())
        rf = r0 + 0.37 * grid.dr
        zf = 0.41 * grid.dz if self.initial_filament_z is None else self.initial_filament_z
        return psi + measurements.ip * greens_psi(grid.rr, grid.zz, rf, zf)

    # -- the Picard step machine ---------------------------------------------------
    def start_fit(
        self,
        measurements: MeasurementSet,
        *,
        psi_initial: np.ndarray | None = None,
        coeffs_initial: np.ndarray | None = None,
        statics: GridStatics | None = None,
        profiler: RegionProfiler | None = None,
        hooks: ObservationHooks | None = None,
    ) -> FitState:
        """Validate one slice's inputs and build its initial Picard state.

        When ``psi_initial`` is supplied *and* a boundary search on it
        succeeds, the state starts in trusted warm-start mode: the fixed
        warm-up current shape is skipped (``warmup_until = 0``) and
        convergence may be declared from the first iterate — this is what
        lets a converged previous-slice psi cut the iteration count.  A
        ``psi_initial`` whose boundary search fails is discarded entirely
        and the fit starts cold — a seed without a findable boundary
        would also break the cold path's own ``steps_`` boundary search,
        so degrading means replacing it, not keeping it.
        ``coeffs_initial`` optionally
        seeds the profile coefficients (the previous slice's converged
        vector); without it the first trusted iterate takes an undamped
        least-squares step so the coefficients jump straight onto the
        trusted geometry's solution.

        ``statics`` short-circuits the per-call rebuild of machine/grid
        invariants (see :class:`GridStatics`); ``profiler`` overrides the
        solver-level profiler — batch workers pass their own because
        :class:`RegionProfiler` nesting is not thread-safe.  ``hooks``
        overrides the solver-level observation hooks (the trace recorder
        itself is thread-safe, so batch workers share one).
        """
        grid = self.grid
        if measurements.n_measurements != self.diagnostics.n_measurements:
            raise FittingError("measurement vector does not match the diagnostic set")
        psi_external = self._psi_from_coils(measurements.coil_currents, statics)
        psi = (
            np.asarray(psi_initial, dtype=float)
            if psi_initial is not None
            else self._initial_psi(measurements, statics)
        )
        if psi.shape != grid.shape:
            raise FittingError("initial psi shape mismatch")
        if not np.all(np.isfinite(psi)):
            raise FittingError("initial psi contains non-finite values")
        n_coeffs = self.pp_basis.n_terms + self.ffp_basis.n_terms
        if coeffs_initial is not None:
            coeffs = np.array(coeffs_initial, dtype=float)
            if coeffs.shape != (n_coeffs,):
                raise FittingError(
                    f"initial coefficients shape {coeffs.shape}, expected ({n_coeffs},)"
                )
            if not np.all(np.isfinite(coeffs)):
                raise FittingError("initial coefficients contain non-finite values")
        else:
            coeffs = np.zeros(n_coeffs)
        sign = 1 if measurements.ip >= 0 else -1
        warm_start = False
        if psi_initial is not None:
            # Trust probe: a supplied psi earns the warm start only if it
            # already carries a findable plasma boundary.
            try:
                find_boundary(
                    grid,
                    psi,
                    self.machine.limiter,
                    sign=sign,
                    inside=statics.inside_limiter if statics is not None else None,
                    limiter_samples=(
                        statics.limiter_samples if statics is not None else None
                    ),
                )
                warm_start = True
            except BoundaryError:
                # The seed carries no usable boundary: fall back to the
                # standard cold-start flux rather than iterating on it.
                warm_start = False
                psi = self._initial_psi(measurements, statics)
        state = FitState(
            measurements=measurements,
            psi=psi,
            psi_external=psi_external,
            sign=sign,
            coeffs=coeffs,
            pcurr=np.zeros(grid.shape),
            profiler=profiler if profiler is not None else self.profiler,
            hooks=hooks if hooks is not None else self.hooks,
            vessel_currents=np.zeros(self.machine.n_vessel) if self.fit_vessel else None,
            warmup_until=0 if warm_start else self.n_warmup,
            warm_start=warm_start,
        )
        state.hooks.event(
            "start_fit",
            grid=f"{grid.nw}x{grid.nh}",
            n_measurements=measurements.n_measurements,
            ip=measurements.ip,
            warm_start=warm_start,
        )
        return state

    @hot_path
    def iterate_pre(
        self, state: FitState, *, statics: GridStatics | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The pre-flux half of one Picard iterate: ``steps_`` boundary
        search, ``current_`` distribution and the ``green_`` linear fit.

        Returns ``(pcurr, psi_ext_iter)`` — exactly what ``pflux_`` needs;
        the caller runs the flux solve (singly or batched across slices)
        and hands ``psi_new`` to :meth:`iterate_post`.
        """
        grid = self.grid
        profiler = state.profiler
        hooks = state.hooks
        measurements = state.measurements
        state.iteration += 1
        inside = statics.inside_limiter if statics is not None else None
        samples = statics.limiter_samples if statics is not None else None
        with hooks.profiled_region(profiler, "steps_", iteration=state.iteration):
            state.boundary = find_boundary(
                grid,
                state.psi,
                self.machine.limiter,
                sign=state.sign,
                inside=inside,
                limiter_samples=samples,
            )
        boundary = state.boundary
        with hooks.profiled_region(profiler, "current_", iteration=state.iteration):
            jmat = basis_current_matrix(
                grid, boundary.psin, boundary.mask, self.pp_basis, self.ffp_basis
            )
        with hooks.profiled_region(profiler, "green_", iteration=state.iteration):
            assembly = assemble_response(
                self.grid_response,
                jmat,
                self.coil_response,
                measurements.coil_currents,
                measurements.values,
                measurements.uncertainties,
            )
            rc = self.relax_current
            if state.warm_start and state.iteration == 1 and not state.coeffs.any():
                # Trusted geometry without seeded coefficients: damping
                # from the zero vector would halve the current on the
                # first iterate, so jump straight to the LSQ solution
                # (which is the Picard fixed point of the damped update).
                rc = 1.0
            if state.iteration <= state.warmup_until:
                # Warm-up: a fixed peaked current shape rescaled to
                # the measured Ip (EFIT's initial parabolic
                # distribution) until the geometry is sane enough
                # for the least-squares step to be trustworthy.  A
                # trusted warm start enters with warmup_until == 0 and
                # never takes this branch, so a converged previous-slice
                # psi is no longer clobbered by the parabolic shape.
                warm = np.zeros(state.coeffs.size)
                warm[self.pp_basis.n_terms] = 1.0
                if self.ffp_basis.n_terms > 1:
                    warm[self.pp_basis.n_terms + 1] = -0.8
                total = float((jmat @ warm).sum())
                if total == 0.0:
                    raise FittingError("warm-up current shape carries no current")
                state.coeffs = warm * (measurements.ip / total)
                state.chi2 = chi_squared(assembly, state.coeffs)
            elif self.fit_vessel:
                # Augment the linear system with one unknown per
                # vessel segment (EFIT's VESSEL fitting option).
                from repro.efit.response import ResponseAssembly

                aug = ResponseAssembly(
                    np.hstack([assembly.matrix, self.vessel_response]),
                    assembly.data,
                    assembly.weights,
                )
                sol = solve_weighted_lsq(aug, ridge=self.ridge)
                n_prof = state.coeffs.size
                state.coeffs = (1.0 - rc) * state.coeffs + rc * sol[:n_prof]
                state.vessel_currents = (
                    1.0 - rc
                ) * state.vessel_currents + rc * sol[n_prof:]
                state.chi2 = chi_squared(
                    aug, np.concatenate([state.coeffs, state.vessel_currents])
                )
            else:
                coeffs_lsq = solve_weighted_lsq(assembly, ridge=self.ridge)
                # Damp the profile update: a full LSQ step against a
                # still-wrong geometry overdrives the current and the
                # Picard map loses contraction (EFIT's fitting
                # weights play the same stabilising role).
                state.coeffs = (1.0 - rc) * state.coeffs + rc * coeffs_lsq
                state.chi2 = chi_squared(assembly, state.coeffs)
        with hooks.profiled_region(profiler, "current_", iteration=state.iteration):
            pcurr = grid.unflatten(jmat @ state.coeffs)
            if self.fitdelz:
                vessel_pred = (
                    self.vessel_response @ state.vessel_currents if self.fit_vessel else None
                )
                delz = self._fit_delz(pcurr, assembly, vessel_pred)
                if delz != 0.0:
                    pcurr = self._shift_z(pcurr, delz)
            state.pcurr = pcurr
        psi_ext_iter = state.psi_external
        if self.fit_vessel:
            psi_ext_iter = state.psi_external + np.tensordot(
                state.vessel_currents, self.vessel_flux_tables, axes=1
            )
        return pcurr, psi_ext_iter

    @hot_path
    def iterate_post(self, state: FitState, psi_new: np.ndarray) -> bool:
        """The post-flux half of one Picard iterate: residual, relaxation,
        history and the convergence decision.  Returns ``True`` once the
        slice has converged."""
        hooks = state.hooks
        with hooks.profiled_region(
            state.profiler, "steps_", iteration=state.iteration
        ):
            span = float(np.ptp(psi_new))
            if span == 0.0:
                raise ConvergenceError("flat flux map during fit")
            state.residual = float(np.max(np.abs(psi_new - state.psi)) / span)
            state.psi = (1.0 - self.relax) * state.psi + self.relax * psi_new
        state.history.append(
            FitIterationRecord(
                iteration=state.iteration,
                residual=state.residual,
                psi_axis=state.boundary.psi_axis,
                psi_boundary=state.boundary.psi_boundary,
                chi2=state.chi2,
                coefficients=state.coeffs.copy(),
            )
        )
        if state.residual < self.tol and state.iteration > state.warmup_until:
            state.converged = True
        elif state.warm_start:
            # Divergence guard: a trusted warm start whose flux is moving
            # by more than warm_start_guard of the span (or growing
            # between iterates) was not actually near the fixed point.
            # Revoke the trust and rerun the cold warm-up from here —
            # the slice then behaves like a cold solve that happened to
            # start from the supplied psi.
            previous = (
                state.history[-2].residual if len(state.history) >= 2 else None
            )
            grew = (
                previous is not None
                and state.residual > 2.0 * previous
                and state.residual > 100.0 * self.tol
            )
            if state.residual > self.warm_start_guard or grew:
                state.warm_start = False
                state.warmup_until = state.iteration + self.n_warmup
                hooks.event(
                    "warm_start_fallback",
                    iteration=state.iteration,
                    residual=state.residual,
                    guard=self.warm_start_guard,
                )
        if hooks.enabled:
            hooks.event(
                "picard_iteration",
                iteration=state.iteration,
                chi2=state.chi2,
                residual=state.residual,
                psi_axis=state.boundary.psi_axis,
                psi_boundary=state.boundary.psi_boundary,
                boundary_type=state.boundary.boundary_type,
                converged=state.converged,
            )
        return state.converged

    def finish(self, state: FitState, *, require_convergence: bool = True) -> FitResult:
        """Seal a Picard state into a :class:`FitResult`."""
        if not state.converged and require_convergence:
            raise ConvergenceError(
                f"fit did not converge: residual {state.residual:.3e} > {self.tol:.1e} "
                f"after {len(state.history)} iterations (max_iters {self.max_iters})"
            )
        profiles = ProfileCoefficients.from_vector(
            self.pp_basis, self.ffp_basis, state.coeffs
        )
        state.hooks.event(
            "finish_fit",
            converged=state.converged,
            iterations=len(state.history),
            chi2=state.chi2,
            residual=state.residual,
            warm_start=state.warm_start,
        )
        return FitResult(
            psi=state.psi,
            pcurr=state.pcurr,
            profiles=profiles,
            boundary=state.boundary,
            converged=state.converged,
            iterations=len(state.history),
            residual=state.residual,
            chi2=state.chi2,
            history=tuple(state.history),
            vessel_currents=(
                state.vessel_currents.copy() if state.vessel_currents is not None else None
            ),
            warm_start=state.warm_start,
        )

    # -- the fit -------------------------------------------------------------------
    def fit(
        self,
        measurements: MeasurementSet,
        *,
        psi_initial: np.ndarray | None = None,
        coeffs_initial: np.ndarray | None = None,
        require_convergence: bool = True,
    ) -> FitResult:
        """Reconstruct one time slice.

        ``psi_initial`` (e.g. the previous slice's converged flux) enters
        trusted warm-start mode when its boundary search succeeds — the
        warm-up phase is skipped and convergence may be declared from the
        first iterate; see :meth:`start_fit`.  Raises
        :class:`ConvergenceError` when the loop exhausts ``max_iters``
        without meeting ``tol`` (suppress with
        ``require_convergence=False`` to inspect the partial result).
        """
        state = self.start_fit(
            measurements, psi_initial=psi_initial, coeffs_initial=coeffs_initial
        )
        hooks = state.hooks
        for _ in range(self.max_iters):
            with hooks.profiled_region(
                self.profiler, "fit_", iteration=state.iteration + 1
            ):
                pcurr, psi_ext_iter = self.iterate_pre(state)
                with hooks.profiled_region(
                    self.profiler, "pflux_", iteration=state.iteration
                ):
                    psi_new = self.pflux.compute(pcurr, psi_ext_iter)
                self.iterate_post(state, psi_new)
            if state.converged:
                break
        return self.finish(state, require_convergence=require_convergence)
