"""Fitted source profiles ``p'(psiN)`` and ``FF'(psiN)`` and derived physics.

A :class:`ProfileCoefficients` bundles the two coefficient vectors produced
by the least-squares fit with their shared bases, and evaluates the derived
pressure and poloidal-current profiles the gEQDSK output records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.basis import PolynomialBasis
from repro.errors import FittingError
from repro.utils.constants import MU0

__all__ = ["ProfileCoefficients"]


@dataclass(frozen=True)
class ProfileCoefficients:
    """Coefficients of the fitted ``p'`` and ``FF'`` profiles.

    Attributes
    ----------
    pp_basis, ffp_basis:
        Bases for the two profiles (need not match).
    alpha:
        ``p'`` coefficients [Pa / (Wb/rad)].
    beta:
        ``FF'`` coefficients [T^2 m^2 / (Wb/rad)].
    """

    pp_basis: PolynomialBasis
    ffp_basis: PolynomialBasis
    alpha: np.ndarray
    beta: np.ndarray

    def __post_init__(self) -> None:
        alpha = np.asarray(self.alpha, dtype=float)
        beta = np.asarray(self.beta, dtype=float)
        if alpha.shape != (self.pp_basis.n_terms,):
            raise FittingError("alpha length does not match p' basis")
        if beta.shape != (self.ffp_basis.n_terms,):
            raise FittingError("beta length does not match FF' basis")
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "beta", beta)

    @property
    def n_coeffs(self) -> int:
        return self.pp_basis.n_terms + self.ffp_basis.n_terms

    @classmethod
    def from_vector(
        cls, pp_basis: PolynomialBasis, ffp_basis: PolynomialBasis, c: np.ndarray
    ) -> "ProfileCoefficients":
        """Split a stacked least-squares solution ``[alpha; beta]``."""
        c = np.asarray(c, dtype=float)
        n_pp = pp_basis.n_terms
        n_total = n_pp + ffp_basis.n_terms
        if c.shape != (n_total,):
            raise FittingError(f"coefficient vector length {c.shape} != {n_total}")
        return cls(pp_basis, ffp_basis, c[:n_pp], c[n_pp:])

    def as_vector(self) -> np.ndarray:
        return np.concatenate([self.alpha, self.beta])

    # -- profile evaluation ------------------------------------------------------
    def pprime(self, x: np.ndarray) -> np.ndarray:
        """``dp/dpsi`` at normalised flux ``x``."""
        return self.pp_basis.evaluate(self.alpha, x)

    def ffprime(self, x: np.ndarray) -> np.ndarray:
        """``F dF/dpsi`` at normalised flux ``x``."""
        return self.ffp_basis.evaluate(self.beta, x)

    def pressure(self, x: np.ndarray, psi_axis: float, psi_boundary: float) -> np.ndarray:
        """Pressure with ``p(1) = 0``: ``p(x) = -dpsi * int_x^1 p'(t) dt``
        where ``dpsi = psi_boundary - psi_axis`` maps psiN to psi."""
        dpsi = psi_boundary - psi_axis
        return -dpsi * self.pp_basis.antiderivative(self.alpha, x)

    def f_squared(self, x: np.ndarray, psi_axis: float, psi_boundary: float, f_boundary: float) -> np.ndarray:
        """``F^2(x)`` with the vacuum value at the boundary:
        ``F^2(x) = F_b^2 - 2 dpsi int_x^1 FF'(t) dt``."""
        dpsi = psi_boundary - psi_axis
        return f_boundary**2 - 2.0 * dpsi * self.ffp_basis.antiderivative(self.beta, x)

    def toroidal_current_density(self, r: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``J_phi(R, x) = R p'(x) + FF'(x) / (mu0 R)`` [A/m^2]."""
        r = np.asarray(r, dtype=float)
        return r * self.pprime(x) + self.ffprime(x) / (MU0 * r)
