"""Tokamak machine description: poloidal-field coils, limiter, vacuum field.

The reconstruction needs to know where the external (poloidal-field) coils
are — their flux threads every diagnostic and sets the boundary condition —
and where the first wall (limiter) is, which bounds the plasma.

:func:`diiid_like_machine` builds a synthetic device with DIII-D-like
geometry (major radius 1.69 m, 18 shaping coils in up-down-symmetric pairs,
a D-shaped limiter).  It is *not* the real DIII-D engineering description —
that data is not public in convenient form — but it has the same scale,
coil topology and diagnostic coverage, which is what the paper's workload
(DIII-D shot #186610) exercises.  See DESIGN.md, substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.efit.greens import greens_br, greens_bz, greens_psi
from repro.efit.grid import RZGrid
from repro.errors import MeasurementError

__all__ = [
    "PoloidalFieldCoil",
    "Limiter",
    "Tokamak",
    "miller_contour",
    "diiid_like_machine",
    "spherical_torus_machine",
    "double_null_machine",
    "single_null_machine",
]


@dataclass(frozen=True)
class PoloidalFieldCoil:
    """A rectangular-cross-section PF coil, subdivided into filaments.

    Parameters
    ----------
    name:
        Coil label (``F1A`` ...).
    r, z:
        Centroid position [m].
    width, height:
        Radial and vertical extent of the winding pack [m].
    turns:
        Number of turns; the coil current is per-turn, total ampere-turns
        are ``turns * current``.
    nr, nz:
        Filament subdivision of the cross-section for Green-function
        accuracy (2x2 is plenty at reconstruction-grid resolution).
    """

    name: str
    r: float
    z: float
    width: float = 0.1
    height: float = 0.1
    turns: float = 1.0
    nr: int = 2
    nz: int = 2

    def __post_init__(self) -> None:
        if self.r - 0.5 * self.width <= 0.0:
            raise MeasurementError(f"coil {self.name} crosses the machine axis")
        if self.nr < 1 or self.nz < 1:
            raise MeasurementError(f"coil {self.name} needs >= 1 filament per direction")

    @cached_property
    def filaments(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Filament positions and per-filament turn weights ``(rf, zf, wf)``."""
        rf = self.r + self.width * ((np.arange(self.nr) + 0.5) / self.nr - 0.5)
        zf = self.z + self.height * ((np.arange(self.nz) + 0.5) / self.nz - 0.5)
        rr, zz = np.meshgrid(rf, zf, indexing="ij")
        w = np.full(rr.size, self.turns / (self.nr * self.nz))
        return rr.ravel(), zz.ravel(), w

    def psi_at(self, r, z) -> np.ndarray:
        """Flux per radian per ampere of coil current at (r, z)."""
        rf, zf, wf = self.filaments
        r = np.asarray(r, dtype=float)
        z = np.asarray(z, dtype=float)
        out = np.zeros(np.broadcast_shapes(r.shape, z.shape))
        for rfi, zfi, wfi in zip(rf, zf, wf):
            out = out + wfi * greens_psi(r, z, rfi, zfi)
        return out

    def br_at(self, r, z) -> np.ndarray:
        rf, zf, wf = self.filaments
        r = np.asarray(r, dtype=float)
        z = np.asarray(z, dtype=float)
        out = np.zeros(np.broadcast_shapes(r.shape, z.shape))
        for rfi, zfi, wfi in zip(rf, zf, wf):
            out = out + wfi * greens_br(r, z, rfi, zfi)
        return out

    def bz_at(self, r, z) -> np.ndarray:
        rf, zf, wf = self.filaments
        r = np.asarray(r, dtype=float)
        z = np.asarray(z, dtype=float)
        out = np.zeros(np.broadcast_shapes(r.shape, z.shape))
        for rfi, zfi, wfi in zip(rf, zf, wf):
            out = out + wfi * greens_bz(r, z, rfi, zfi)
        return out


@dataclass(frozen=True)
class VesselSegment:
    """One toroidal filament of the vacuum-vessel wall.

    During transients the vessel carries induced (eddy) currents that
    pollute the magnetics; production EFIT therefore *fits* a current per
    vessel segment alongside the plasma profile coefficients.  Each
    segment is modeled as a single filament (the wall is thin).
    """

    name: str
    r: float
    z: float

    def __post_init__(self) -> None:
        if self.r <= 0.0:
            raise MeasurementError(f"vessel segment {self.name} at R <= 0")

    def psi_at(self, r, z) -> np.ndarray:
        return greens_psi(r, z, self.r, self.z)

    def br_at(self, r, z) -> np.ndarray:
        return greens_br(r, z, self.r, self.z)

    def bz_at(self, r, z) -> np.ndarray:
        return greens_bz(r, z, self.r, self.z)


@dataclass(frozen=True)
class Limiter:
    """The first-wall polygon bounding the plasma."""

    r: np.ndarray
    z: np.ndarray

    def __post_init__(self) -> None:
        r = np.asarray(self.r, dtype=float)
        z = np.asarray(self.z, dtype=float)
        if r.ndim != 1 or r.shape != z.shape or r.size < 3:
            raise MeasurementError("limiter needs matching 1-D r/z arrays of >= 3 points")
        object.__setattr__(self, "r", r)
        object.__setattr__(self, "z", z)

    @property
    def n_points(self) -> int:
        return int(self.r.size)

    def contains(self, r, z) -> np.ndarray:
        """Vectorised point-in-polygon (even-odd rule).

        Broadcasts edges against query points in one shot — the boundary
        search probes the polygon with scalar X-point candidates every
        Picard iterate, so a per-edge Python loop here dominates
        ``steps_`` time.
        """
        r = np.asarray(r, dtype=float)
        z = np.asarray(z, dtype=float)
        rp, zp = np.broadcast_arrays(r, z)
        shape = rp.shape
        rp = rp.reshape(1, -1)
        zp = zp.reshape(1, -1)
        x1 = self.r[:, None]
        y1 = self.z[:, None]
        x2 = np.roll(self.r, -1)[:, None]
        y2 = np.roll(self.z, -1)[:, None]
        crosses = (y1 > zp) != (y2 > zp)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_int = x1 + (zp - y1) * (x2 - x1) / (y2 - y1)
        inside = np.logical_xor.reduce(crosses & (rp < x_int), axis=0)
        return inside.reshape(shape)

    def sample_points(self, n_per_edge: int = 4) -> tuple[np.ndarray, np.ndarray]:
        """Densified limiter contour used for the boundary-psi search."""
        if n_per_edge < 1:
            raise MeasurementError("n_per_edge must be >= 1")
        rs: list[np.ndarray] = []
        zs: list[np.ndarray] = []
        t = np.linspace(0.0, 1.0, n_per_edge, endpoint=False)
        x2 = np.roll(self.r, -1)
        y2 = np.roll(self.z, -1)
        for xa, ya, xb, yb in zip(self.r, self.z, x2, y2):
            rs.append(xa + t * (xb - xa))
            zs.append(ya + t * (yb - ya))
        return np.concatenate(rs), np.concatenate(zs)


@dataclass(frozen=True)
class Tokamak:
    """A machine: coils + limiter + vessel + vacuum toroidal field."""

    name: str
    coils: tuple[PoloidalFieldCoil, ...]
    limiter: Limiter
    #: Vacuum ``F = R * B_phi`` [T m]; sets the boundary value of F.
    f_vacuum: float
    #: Default computational box for this device.
    default_box: tuple[float, float, float, float] = (0.84, 2.54, -1.6, 1.6)
    #: Vacuum-vessel wall segments (eddy-current carriers); may be empty.
    vessel: tuple[VesselSegment, ...] = ()

    def __post_init__(self) -> None:
        if not self.coils:
            raise MeasurementError("a tokamak needs at least one PF coil")
        names = [c.name for c in self.coils]
        if len(set(names)) != len(names):
            raise MeasurementError("duplicate coil names")
        vnames = [v.name for v in self.vessel]
        if len(set(vnames)) != len(vnames):
            raise MeasurementError("duplicate vessel segment names")

    @property
    def n_coils(self) -> int:
        return len(self.coils)

    def coil_index(self, name: str) -> int:
        for i, coil in enumerate(self.coils):
            if coil.name == name:
                return i
        raise MeasurementError(f"no coil named {name!r}")

    def make_grid(self, n: int) -> RZGrid:
        """The ``n x n`` computational grid on this device's default box."""
        rmin, rmax, zmin, zmax = self.default_box
        return RZGrid(n, n, rmin, rmax, zmin, zmax)

    def coil_flux_tables(self, grid: RZGrid) -> np.ndarray:
        """Per-coil vacuum flux tables, shape ``(n_coils, nw, nh)``.

        ``psi_vacuum = tensordot(currents, tables, 1)`` — the ``green_``
        setup data for the external sources.
        """
        tables = np.empty((self.n_coils, grid.nw, grid.nh))
        for k, coil in enumerate(self.coils):
            tables[k] = coil.psi_at(grid.rr, grid.zz)
        return tables

    def psi_from_coils(self, grid: RZGrid, currents: np.ndarray) -> np.ndarray:
        """Vacuum flux on the grid for the given per-coil currents [A]."""
        currents = np.asarray(currents, dtype=float)
        if currents.shape != (self.n_coils,):
            raise MeasurementError(
                f"need {self.n_coils} coil currents, got shape {currents.shape}"
            )
        return np.tensordot(currents, self.coil_flux_tables(grid), axes=1)

    # -- vessel ------------------------------------------------------------------
    @property
    def n_vessel(self) -> int:
        return len(self.vessel)

    def vessel_flux_tables(self, grid: RZGrid) -> np.ndarray:
        """Per-segment vessel flux tables, shape ``(n_vessel, nw, nh)``."""
        tables = np.empty((self.n_vessel, grid.nw, grid.nh))
        for k, seg in enumerate(self.vessel):
            tables[k] = seg.psi_at(grid.rr, grid.zz)
        return tables

    def psi_from_vessel(self, grid: RZGrid, currents: np.ndarray) -> np.ndarray:
        """Flux of the vessel eddy currents on the grid."""
        currents = np.asarray(currents, dtype=float)
        if currents.shape != (self.n_vessel,):
            raise MeasurementError(
                f"need {self.n_vessel} vessel currents, got shape {currents.shape}"
            )
        if self.n_vessel == 0:
            return np.zeros(grid.shape)
        return np.tensordot(currents, self.vessel_flux_tables(grid), axes=1)


def miller_contour(
    r0: float,
    a: float,
    kappa: float,
    delta: float,
    n: int,
    *,
    kappa_lower: float | None = None,
    delta_lower: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Miller-parameterised D-shaped closed contour.

    ``r = r0 + a cos(theta + delta sin theta)``, ``z = kappa a sin theta``.
    ``kappa_lower``/``delta_lower`` switch the lower half (``sin theta < 0``)
    to its own elongation/triangularity, producing the up-down-asymmetric
    shapes of single-null plasmas; both halves meet continuously at the
    midplane (``z = 0`` at ``theta = 0, pi`` regardless of the split).
    Defaults reproduce the symmetric contour exactly.
    """
    if a <= 0.0 or r0 - a <= 0.0:
        raise MeasurementError("miller contour crosses the machine axis")
    theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    if kappa_lower is None and delta_lower is None:
        r = r0 + a * np.cos(theta + delta * np.sin(theta))
        z = kappa * a * np.sin(theta)
        return r, z
    k_lo = kappa if kappa_lower is None else kappa_lower
    d_lo = delta if delta_lower is None else delta_lower
    sin_t = np.sin(theta)
    kap = np.where(sin_t >= 0.0, kappa, k_lo)
    dlt = np.where(sin_t >= 0.0, delta, d_lo)
    r = r0 + a * np.cos(theta + dlt * sin_t)
    z = kap * a * sin_t
    return r, z


#: Backwards-compatible private alias (historical internal name).
_miller_contour = miller_contour


def diiid_like_machine(*, n_limiter: int = 64, n_vessel: int = 24) -> Tokamak:
    """A DIII-D-scale synthetic tokamak.

    Eighteen PF coils in nine up-down-symmetric pairs whose layout follows
    the DIII-D F-coil arrangement (inboard solenoid-side stack F1-F5,
    outboard ring F6-F9); D-shaped limiter with R0 = 1.69 m, a = 0.67 m,
    elongation 1.75, triangularity 0.35; vacuum field B0 = 2.0 T; a
    ``n_vessel``-segment vacuum-vessel wall between the limiter and the
    diagnostic ring.
    """
    upper = [
        ("F1A", 0.8608, 0.1683, 0.0508, 0.32, 58.0),
        ("F2A", 0.8614, 0.5081, 0.0508, 0.32, 58.0),
        ("F3A", 0.8628, 0.8491, 0.0508, 0.32, 58.0),
        ("F4A", 0.8611, 1.1899, 0.0508, 0.32, 58.0),
        ("F5A", 1.0041, 1.5169, 0.13, 0.13, 58.0),
        ("F6A", 2.6124, 0.4376, 0.27, 0.17, 55.0),
        ("F7A", 2.3733, 1.1171, 0.17, 0.17, 55.0),
        ("F8A", 1.2518, 1.6019, 0.13, 0.13, 58.0),
        ("F9A", 1.6890, 1.5874, 0.13, 0.13, 55.0),
    ]
    coils: list[PoloidalFieldCoil] = []
    for name, r, z, w, h, turns in upper:
        coils.append(PoloidalFieldCoil(name, r, z, w, h, turns))
        coils.append(PoloidalFieldCoil(name.replace("A", "B"), r, -z, w, h, turns))
    lr, lz = _miller_contour(r0=1.69, a=0.67, kappa=1.75, delta=0.35, n=n_limiter)
    # Vessel wall: the limiter contour scaled out by 6% about its centroid.
    vr, vz = _miller_contour(r0=1.69, a=0.67 * 1.06, kappa=1.75, delta=0.35, n=n_vessel)
    vessel = tuple(
        VesselSegment(f"VS{k:03d}", float(r), float(z)) for k, (r, z) in enumerate(zip(vr, vz))
    )
    return Tokamak(
        name="DIII-D-like",
        coils=tuple(coils),
        limiter=Limiter(lr, lz),
        f_vacuum=1.69 * 2.0,
        default_box=(0.84, 2.54, -1.6, 1.6),
        vessel=vessel,
    )


def _mirror_pairs(
    upper: list[tuple[str, float, float, float, float, float]],
) -> tuple[PoloidalFieldCoil, ...]:
    """Expand an upper-half coil table into up-down-symmetric A/B pairs."""
    coils: list[PoloidalFieldCoil] = []
    for name, r, z, w, h, turns in upper:
        coils.append(PoloidalFieldCoil(name, r, z, w, h, turns))
        coils.append(PoloidalFieldCoil(name.replace("A", "B"), r, -z, w, h, turns))
    return tuple(coils)


def _vessel_ring(
    r0: float,
    a: float,
    kappa: float,
    delta: float,
    n: int,
    *,
    kappa_lower: float | None = None,
    delta_lower: float | None = None,
) -> tuple[VesselSegment, ...]:
    """Vessel wall: the limiter contour scaled out by 6 % about its centroid."""
    vr, vz = miller_contour(
        r0, a * 1.06, kappa, delta, n, kappa_lower=kappa_lower, delta_lower=delta_lower
    )
    return tuple(
        VesselSegment(f"VS{k:03d}", float(r), float(z)) for k, (r, z) in enumerate(zip(vr, vz))
    )


def spherical_torus_machine(*, n_limiter: int = 64, n_vessel: int = 24) -> Tokamak:
    """A spherical-torus (low-aspect-ratio) machine.

    Geometry follows the ST power-plant-scale design point the scenario
    zoo targets: R0 = 2.5 m, aspect ratio A = 1.6 (a = 1.5625 m),
    elongation 2.8 — the regime the EXL-50U reconstruction work shows
    stresses Grad-Shafranov solvers very differently from conventional
    aspect ratio (strong outboard/inboard field asymmetry, near-vertical
    inboard flux surfaces).  A central-solenoid-side coil stack plus an
    outboard PF ring, all in up-down-symmetric pairs.
    """
    r0, a, kappa, delta = 2.5, 1.5625, 2.8, 0.45
    upper = [
        # Central-solenoid-side stack (tall, inboard).
        ("CS1A", 0.42, 0.60, 0.12, 1.00, 60.0),
        ("CS2A", 0.42, 1.75, 0.12, 1.00, 60.0),
        ("CS3A", 0.42, 2.90, 0.12, 1.00, 60.0),
        ("CS4A", 0.42, 4.00, 0.12, 0.90, 60.0),
        # Outboard PF ring tracking the strongly elongated wall.
        ("PF1A", 1.60, 4.95, 0.30, 0.25, 55.0),
        ("PF2A", 3.10, 4.35, 0.30, 0.25, 55.0),
        ("PF3A", 4.45, 2.70, 0.30, 0.25, 55.0),
        ("PF4A", 4.80, 1.05, 0.30, 0.25, 55.0),
    ]
    lr, lz = miller_contour(r0, a, kappa, delta, n_limiter)
    return Tokamak(
        name="spherical-torus",
        coils=_mirror_pairs(upper),
        limiter=Limiter(lr, lz),
        # Low-field ST: B0 ~ 1 T at R0 = 2.5 m.
        f_vacuum=2.5,
        default_box=(0.55, 4.55, -4.85, 4.85),
        vessel=_vessel_ring(r0, a, kappa, delta, n_vessel),
    )


def double_null_machine(*, n_limiter: int = 64, n_vessel: int = 24) -> Tokamak:
    """A DIII-D-scale machine shaped for double-null diverted operation.

    The wall is taller and wider than the DIII-D-like limiter (minor
    radius 0.78 m, elongation 2.05) so an up-down-symmetric separatrix
    with X-points near z = ±1.1 m fits strictly inside it — a diverted
    boundary exists only when the X-point flux surface clears the wall —
    and the upper/lower coil rows sit higher to give the shape-design
    problem radial-field actuators near both nulls.
    """
    r0, a, kappa, delta = 1.69, 0.78, 2.05, 0.45
    upper = [
        ("F1A", 0.8608, 0.25, 0.0508, 0.36, 58.0),
        ("F2A", 0.8614, 0.70, 0.0508, 0.36, 58.0),
        ("F3A", 0.8628, 1.15, 0.0508, 0.36, 58.0),
        ("F4A", 0.8611, 1.60, 0.0508, 0.36, 58.0),
        ("F5A", 1.0041, 1.95, 0.13, 0.13, 58.0),
        ("F6A", 2.6124, 0.52, 0.27, 0.17, 55.0),
        ("F7A", 2.3733, 1.40, 0.17, 0.17, 55.0),
        # Divertor-row coils close above/below the target X-points.
        ("F8A", 1.2518, 1.90, 0.13, 0.13, 58.0),
        ("F9A", 1.6890, 1.85, 0.13, 0.13, 55.0),
    ]
    lr, lz = miller_contour(r0, a, kappa, delta, n_limiter)
    return Tokamak(
        name="double-null",
        coils=_mirror_pairs(upper),
        limiter=Limiter(lr, lz),
        f_vacuum=1.69 * 2.0,
        default_box=(0.84, 2.54, -1.75, 1.75),
        vessel=_vessel_ring(r0, a, kappa, delta, n_vessel),
    )


def single_null_machine(*, n_limiter: int = 64, n_vessel: int = 24) -> Tokamak:
    """A DIII-D-scale machine with an up-down-asymmetric first wall.

    The limiter's lower half is taller and more triangular than the upper
    (kappa 2.05/1.65, delta 0.55/0.35) to host a lower-single-null
    diverted plasma; the coil set is geometrically symmetric (shape
    asymmetry comes from the designed currents), with the same divertor
    rows as :func:`double_null_machine`.
    """
    r0, a = 1.69, 0.67
    kappa_u, kappa_l = 1.65, 2.05
    delta_u, delta_l = 0.35, 0.55
    upper = [
        ("F1A", 0.8608, 0.25, 0.0508, 0.36, 58.0),
        ("F2A", 0.8614, 0.70, 0.0508, 0.36, 58.0),
        ("F3A", 0.8628, 1.15, 0.0508, 0.36, 58.0),
        ("F4A", 0.8611, 1.60, 0.0508, 0.36, 58.0),
        ("F5A", 1.0041, 1.95, 0.13, 0.13, 58.0),
        ("F6A", 2.6124, 0.52, 0.27, 0.17, 55.0),
        ("F7A", 2.3733, 1.40, 0.17, 0.17, 55.0),
        ("F8A", 1.2518, 1.90, 0.13, 0.13, 58.0),
        ("F9A", 1.6890, 1.85, 0.13, 0.13, 55.0),
    ]
    lr, lz = miller_contour(
        r0, a, kappa_u, delta_u, n_limiter, kappa_lower=kappa_l, delta_lower=delta_l
    )
    return Tokamak(
        name="single-null",
        coils=_mirror_pairs(upper),
        limiter=Limiter(lr, lz),
        f_vacuum=1.69 * 2.0,
        default_box=(0.84, 2.54, -1.75, 1.55),
        vessel=_vessel_ring(
            r0, a, kappa_u, delta_u, n_vessel, kappa_lower=kappa_l, delta_lower=delta_l
        ),
    )
