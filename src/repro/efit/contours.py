"""Flux-surface tracing.

Downstream consumers of an equilibrium (transport, stability, the q
profile in the g-file) need the closed flux surfaces ``psiN = const``.
For the nested surfaces of a reconstructed equilibrium a ray cast is
robust and fast: from the magnetic axis, march outward along each of
``n_theta`` poloidal rays and bisect ``psiN(s) = level`` with bilinear
interpolation.  All rays bisect simultaneously (vectorised), so a full
surface costs ~45 interpolation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.boundary import BoundaryResult
from repro.efit.grid import RZGrid
from repro.errors import BoundaryError

__all__ = ["FluxSurface", "trace_flux_surface"]


@dataclass(frozen=True)
class FluxSurface:
    """A closed flux surface as a polygon (not repeating the first point)."""

    level: float  # psiN value
    r: np.ndarray
    z: np.ndarray

    @property
    def n_points(self) -> int:
        return int(self.r.size)

    @property
    def perimeter(self) -> float:
        dr = np.diff(np.append(self.r, self.r[0]))
        dz = np.diff(np.append(self.z, self.z[0]))
        return float(np.hypot(dr, dz).sum())

    @property
    def area(self) -> float:
        """Poloidal cross-section area (shoelace)."""
        r2 = np.append(self.r, self.r[0])
        z2 = np.append(self.z, self.z[0])
        return float(abs(np.sum(r2[:-1] * z2[1:] - r2[1:] * z2[:-1])) / 2.0)

    @property
    def volume(self) -> float:
        """Torus volume enclosed: ``V = 2 pi R_centroid * A`` (Pappus)."""
        r2 = np.append(self.r, self.r[0])
        z2 = np.append(self.z, self.z[0])
        cross = r2[:-1] * z2[1:] - r2[1:] * z2[:-1]
        area6 = np.sum(cross) * 3.0
        if area6 == 0.0:
            return 0.0
        r_cent = np.sum((r2[:-1] + r2[1:]) * cross) / area6
        return float(2.0 * np.pi * abs(r_cent) * self.area)

    def midpoints(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Segment midpoints and lengths ``(rm, zm, dl)`` for line integrals."""
        r2 = np.append(self.r, self.r[0])
        z2 = np.append(self.z, self.z[0])
        rm = 0.5 * (r2[:-1] + r2[1:])
        zm = 0.5 * (z2[:-1] + z2[1:])
        dl = np.hypot(np.diff(r2), np.diff(z2))
        return rm, zm, dl


def trace_flux_surface(
    grid: RZGrid,
    boundary: BoundaryResult,
    level: float,
    *,
    n_theta: int = 128,
    n_bisect: int = 45,
) -> FluxSurface:
    """Trace the ``psiN = level`` surface of a reconstructed equilibrium.

    ``level`` must lie in (0, 1]; the surface is assumed star-shaped about
    the magnetic axis (true for the nested surfaces EFIT produces — a
    non-bracketing ray raises :class:`BoundaryError`).
    """
    if not (0.0 < level <= 1.0):
        raise BoundaryError(f"flux-surface level {level} outside (0, 1]")
    if n_theta < 8:
        raise BoundaryError("need at least 8 rays for a surface")
    r0, z0 = boundary.r_axis, boundary.z_axis
    theta = np.linspace(0.0, 2.0 * np.pi, n_theta, endpoint=False)
    ct, st = np.cos(theta), np.sin(theta)

    # Per-ray distance to the computational box (bracketing limit).
    s_max_box = np.full(n_theta, np.inf)
    for wall, comp, origin in (
        (grid.rmax, ct, r0),
        (grid.rmin, ct, r0),
        (grid.zmax, st, z0),
        (grid.zmin, st, z0),
    ):
        with np.errstate(divide="ignore", invalid="ignore"):
            s = (wall - origin) / comp
        s[~np.isfinite(s) | (s <= 0)] = np.inf
        s_max_box = np.minimum(s_max_box, s)
    s_max_box *= 1.0 - 1e-9

    psin = boundary.psin

    def level_at(s: np.ndarray) -> np.ndarray:
        return grid.bilinear(psin, r0 + s * ct, z0 + s * st)

    # March outward in grid-scale steps to bracket the *first* crossing.
    # A multiplicative expansion can leapfrog the thin ``psiN`` shell near
    # an X-point straight into private flux (where ``psiN`` drops below
    # the level again) and never bracket a diverted surface.
    step = 0.5 * min(grid.dr, grid.dz)
    lo = np.zeros(n_theta)
    hi = np.minimum(step, s_max_box)
    for _ in range(int(np.ceil(float(np.max(s_max_box)) / step)) + 1):
        vals = level_at(hi)
        need = (vals < level) & (hi < s_max_box)
        if not need.any():
            break
        lo[need] = hi[need]
        hi[need] = np.minimum(hi[need] + step, s_max_box[need])
    if (level_at(hi) < level).any():
        raise BoundaryError(
            f"psiN = {level} not bracketed along some rays (open surface?)"
        )

    for _ in range(n_bisect):
        mid = 0.5 * (lo + hi)
        inside = level_at(mid) < level
        lo = np.where(inside, mid, lo)
        hi = np.where(inside, hi, mid)
    s = 0.5 * (lo + hi)
    return FluxSurface(level=level, r=r0 + s * ct, z=z0 + s * st)
