"""The rectangular (R, Z) computational grid.

EFIT solves on a uniform rectangular mesh of ``nw`` radial by ``nh`` vertical
points (65x65 ... 513x513 in the paper).  The Fortran code flattens 2-D
fields column-major, ``kk = (i-1)*nh + j`` with ``i`` the R index and ``j``
the Z index — the exact indexing visible in the paper's Figure 2/3 loop
(``kkkk=(ii-1)*nh+jj``).  :class:`RZGrid` preserves that convention so our
kernel implementations can be compared line-by-line against the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import GridError

__all__ = ["RZGrid", "PAPER_GRID_SIZES"]

#: The four grid sizes evaluated in the paper.
PAPER_GRID_SIZES: tuple[int, ...] = (65, 129, 257, 513)


@dataclass(frozen=True)
class RZGrid:
    """A uniform rectangular grid over ``[rmin, rmax] x [zmin, zmax]``.

    Parameters
    ----------
    nw, nh:
        Number of radial (R) and vertical (Z) grid points, including the
        boundary points.  Must each be >= 3.
    rmin, rmax, zmin, zmax:
        Domain extents in metres.  ``rmin`` must be positive: the
        Grad-Shafranov operator ``Delta*`` is singular on the axis R=0.

    Fields on this grid are stored as ``(nw, nh)`` arrays indexed
    ``psi[i, j]`` with ``i`` along R and ``j`` along Z.  The Fortran
    column-major flat index is ``kk = i*nh + j`` (0-based).
    """

    nw: int
    nh: int
    rmin: float = 0.84
    rmax: float = 2.54
    zmin: float = -1.60
    zmax: float = 1.60

    def __post_init__(self) -> None:
        if self.nw < 3 or self.nh < 3:
            raise GridError(f"grid must be at least 3x3, got {self.nw}x{self.nh}")
        if self.rmin <= 0.0:
            raise GridError(f"rmin must be positive (Delta* singular at R=0), got {self.rmin}")
        if self.rmax <= self.rmin:
            raise GridError(f"rmax ({self.rmax}) must exceed rmin ({self.rmin})")
        if self.zmax <= self.zmin:
            raise GridError(f"zmax ({self.zmax}) must exceed zmin ({self.zmin})")

    # -- coordinates ---------------------------------------------------------
    @cached_property
    def r(self) -> np.ndarray:
        """Radial node coordinates, shape ``(nw,)``."""
        return np.linspace(self.rmin, self.rmax, self.nw)

    @cached_property
    def z(self) -> np.ndarray:
        """Vertical node coordinates, shape ``(nh,)``."""
        return np.linspace(self.zmin, self.zmax, self.nh)

    @property
    def dr(self) -> float:
        return (self.rmax - self.rmin) / (self.nw - 1)

    @property
    def dz(self) -> float:
        return (self.zmax - self.zmin) / (self.nh - 1)

    @property
    def cell_area(self) -> float:
        """Area element dR*dZ used when integrating grid current."""
        return self.dr * self.dz

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nw, self.nh)

    @property
    def size(self) -> int:
        return self.nw * self.nh

    @cached_property
    def rr(self) -> np.ndarray:
        """R coordinate broadcast over the grid, shape ``(nw, nh)``."""
        return np.broadcast_to(self.r[:, None], self.shape).copy()

    @cached_property
    def zz(self) -> np.ndarray:
        """Z coordinate broadcast over the grid, shape ``(nw, nh)``."""
        return np.broadcast_to(self.z[None, :], self.shape).copy()

    # -- Fortran-style flattening -------------------------------------------
    def flatten(self, field: np.ndarray) -> np.ndarray:
        """Flatten an ``(nw, nh)`` field to EFIT's column-major vector."""
        field = np.asarray(field)
        if field.shape != self.shape:
            raise GridError(f"field shape {field.shape} != grid shape {self.shape}")
        return field.reshape(self.size)

    def unflatten(self, vec: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`flatten`."""
        vec = np.asarray(vec)
        if vec.shape != (self.size,):
            raise GridError(f"vector length {vec.shape} != grid size {self.size}")
        return vec.reshape(self.shape)

    def flat_index(self, i: int, j: int) -> int:
        """0-based flat index of node (i, j): ``kk = i*nh + j``."""
        if not (0 <= i < self.nw and 0 <= j < self.nh):
            raise GridError(f"node ({i}, {j}) outside {self.nw}x{self.nh} grid")
        return i * self.nh + j

    def geometry_hash(self) -> str:
        """Stable hex fingerprint of the grid geometry.

        Two grids share a hash iff they share mesh counts and domain
        extents — exactly the condition under which Green tables and
        edge operators are interchangeable.  Used as the content
        identity of shared-memory arenas and on-disk table caches
        (including the CI ``actions/cache`` key).
        """
        blob = (
            f"rzgrid-v1:{self.nw}:{self.nh}:"
            f"{self.rmin!r}:{self.rmax!r}:{self.zmin!r}:{self.zmax!r}"
        )
        return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]

    # -- boundary bookkeeping -------------------------------------------------
    @cached_property
    def boundary_mask(self) -> np.ndarray:
        """Boolean ``(nw, nh)`` mask of the grid-edge nodes."""
        mask = np.zeros(self.shape, dtype=bool)
        mask[0, :] = mask[-1, :] = True
        mask[:, 0] = mask[:, -1] = True
        return mask

    @property
    def n_boundary(self) -> int:
        """Number of distinct grid-edge nodes."""
        return 2 * self.nw + 2 * self.nh - 4

    def interior_slice(self) -> tuple[slice, slice]:
        """Slices selecting the interior nodes of an ``(nw, nh)`` field."""
        return (slice(1, self.nw - 1), slice(1, self.nh - 1))

    # -- interpolation ---------------------------------------------------------
    def bilinear(self, field: np.ndarray, r: float | np.ndarray, z: float | np.ndarray) -> np.ndarray:
        """Bilinear interpolation of a grid field at points (r, z).

        Points outside the domain are clamped to the boundary; EFIT's
        limiter and diagnostics always lie inside the computational box, so
        clamping only guards against round-off at the edges.
        """
        field = np.asarray(field)
        if field.shape != self.shape:
            raise GridError(f"field shape {field.shape} != grid shape {self.shape}")
        r = np.asarray(r, dtype=float)
        z = np.asarray(z, dtype=float)
        fr = np.clip((r - self.rmin) / self.dr, 0.0, self.nw - 1 - 1e-12)
        fz = np.clip((z - self.zmin) / self.dz, 0.0, self.nh - 1 - 1e-12)
        i0 = fr.astype(int)
        j0 = fz.astype(int)
        tr = fr - i0
        tz = fz - j0
        f00 = field[i0, j0]
        f10 = field[i0 + 1, j0]
        f01 = field[i0, j0 + 1]
        f11 = field[i0 + 1, j0 + 1]
        return (
            f00 * (1 - tr) * (1 - tz)
            + f10 * tr * (1 - tz)
            + f01 * (1 - tr) * tz
            + f11 * tr * tz
        )

    def contains(self, r: float | np.ndarray, z: float | np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the computational box."""
        r = np.asarray(r)
        z = np.asarray(z)
        return (r >= self.rmin) & (r <= self.rmax) & (z >= self.zmin) & (z <= self.zmax)

    def shift_z(self, field: np.ndarray, delz: float) -> np.ndarray:
        """Shift a grid field vertically by ``delz`` metres (linear
        interpolation, zero fill) — ``f_new(z) = f(z - delz)``.

        This is the rigid vertical transport used both by EFIT's
        ``fitdelz`` feedback (shifting the fitted current distribution)
        and by the forward solver's vertical-position hold.
        """
        field = np.asarray(field)
        if field.shape != self.shape:
            raise GridError(f"field shape {field.shape} != grid shape {self.shape}")
        s = delz / self.dz
        j = np.arange(self.nh)
        j_src = j - s
        j0 = np.clip(np.floor(j_src).astype(int), 0, self.nh - 1)
        j1 = np.clip(j0 + 1, 0, self.nh - 1)
        frac = np.clip(j_src - j0, 0.0, 1.0)
        valid = (j_src >= 0.0) & (j_src <= self.nh - 1)
        out = field[:, j0] * (1.0 - frac) + field[:, j1] * frac
        out[:, ~valid] = 0.0
        return out

    def refined(self, factor: int = 2) -> "RZGrid":
        """A grid with (n-1)*factor+1 points per direction on the same box.

        Doubling 65 -> 129 -> 257 -> 513 reproduces the paper's sweep.
        """
        if factor < 1:
            raise GridError("refinement factor must be >= 1")
        return RZGrid(
            nw=(self.nw - 1) * factor + 1,
            nh=(self.nh - 1) * factor + 1,
            rmin=self.rmin,
            rmax=self.rmax,
            zmin=self.zmin,
            zmax=self.zmax,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RZGrid({self.nw}x{self.nh}, R=[{self.rmin}, {self.rmax}], "
            f"Z=[{self.zmin}, {self.zmax}])"
        )
