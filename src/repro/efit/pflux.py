"""The ``pflux_`` subroutine: poloidal flux from the grid current.

This is the routine the paper GPU-offloads — 47-92 % of ``fit_`` time on a
CPU core (Table 2).  It has three parts:

1. **Boundary Green sums** — the O(N^3) loop nests of Figures 2/3: for
   every node on the edge of the computational box, sum the precomputed
   Green table against all ``nw x nh`` node currents.  Two implementations
   are provided:

   * :func:`boundary_flux_reference` — a line-by-line translation of the
     paper's Fortran loops (including its sign convention, the
     ``kk=(nw-1)*nh+j`` flattening and the ``mj=|j-jj|`` table indexing).
     This is the "original code" analog: pure Python loops, kept for
     correctness comparison and as the slow baseline in the real
     wall-clock benchmarks.
   * :func:`boundary_flux_vectorized` — the same arithmetic cast as BLAS
     contractions (one ``(nh,nw)x(nw,nh)`` matmul per vertical edge, one
     ``tensordot`` per horizontal edge), the "optimized" analog and the
     numeric payload executed by the simulated GPU kernels.

2. **Right-hand side** — ``-mu0 R J_phi`` over the grid (O(N^2)).

3. **Interior solve** — Dirichlet solve with the boundary sums (plus the
   external coil flux) as edge data.

Both implementations produce bit-comparable fluxes; the test suite checks
them against each other and against direct Green-function superposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.grid import RZGrid
from repro.efit.solvers.base import GSInteriorSolver
from repro.efit.tables import BoundaryGreensTables
from repro.errors import GridError
from repro.utils.constants import MU0

__all__ = [
    "boundary_flux_reference",
    "boundary_flux_vectorized",
    "PfluxBase",
    "PfluxReference",
    "PfluxVectorized",
]


def boundary_flux_reference(gridpc: np.ndarray, pcurr: np.ndarray, nw: int, nh: int) -> np.ndarray:
    """Paper Figure 2/3 boundary loops, translated loop-for-loop.

    Parameters
    ----------
    gridpc:
        The ``(nw*nh, nw)`` Fortran-layout Green table
        (:meth:`BoundaryGreensTables.fortran_view`), row ``i_b*nh + |dj|``.
    pcurr:
        Flat node currents in EFIT ordering ``kkkk = ii*nh + jj``.  Note
        the kernel keeps the paper's ``psi = -sum(gridpc * pcurr)`` sign;
        callers wanting physical flux pass ``-pcurr`` (see
        :class:`PfluxBase`).

    Returns the flat ``(nw*nh,)`` flux vector with only the edge entries
    filled.
    """
    if gridpc.shape != (nw * nh, nw):
        raise GridError(f"gridpc shape {gridpc.shape} != {(nw * nh, nw)}")
    if pcurr.shape != (nw * nh,):
        raise GridError(f"pcurr length {pcurr.shape} != {nw * nh}")
    psi = np.zeros(nw * nh)

    # --- left (i_b = 0) and right (i_b = nw-1) edges: the paper's loop ----
    for j in range(nh):
        kk = (nw - 1) * nh + j
        tempsum1 = 0.0
        tempsum2 = 0.0
        for ii in range(nw):
            for jj in range(nh):
                kkkk = ii * nh + jj
                mj = abs(j - jj)
                mk = (nw - 1) * nh + mj
                tempsum1 = tempsum1 - gridpc[mj, ii] * pcurr[kkkk]
                tempsum2 = tempsum2 - gridpc[mk, ii] * pcurr[kkkk]
        psi[j] = tempsum1
        psi[kk] = tempsum2

    # --- bottom (j_b = 0) and top (j_b = nh-1) edges: analogous loop ------
    for i in range(nw):
        kb = i * nh
        kt = i * nh + (nh - 1)
        tempsum1 = 0.0
        tempsum2 = 0.0
        for ii in range(nw):
            for jj in range(nh):
                kkkk = ii * nh + jj
                mb = i * nh + jj
                mt = i * nh + (nh - 1 - jj)
                tempsum1 = tempsum1 - gridpc[mb, ii] * pcurr[kkkk]
                tempsum2 = tempsum2 - gridpc[mt, ii] * pcurr[kkkk]
        psi[kb] = tempsum1
        psi[kt] = tempsum2
    return psi


def boundary_flux_vectorized(tables: BoundaryGreensTables, pcurr: np.ndarray) -> np.ndarray:
    """BLAS form of :func:`boundary_flux_reference` (same sign convention).

    ``pcurr`` is the ``(nw, nh)`` node-current grid.  Returns an
    ``(nw, nh)`` field with only the edge ring filled.
    """
    grid = tables.grid
    nw, nh = grid.nw, grid.nh
    pcurr = np.asarray(pcurr, dtype=float)
    if pcurr.shape != grid.shape:
        raise GridError(f"pcurr shape {pcurr.shape} != grid {grid.shape}")
    gpc = tables.gpc
    psi = np.zeros(grid.shape)

    # Vertical edges: W[d, jj] = sum_ii gpc[i_b, d, ii] pcurr[ii, jj];
    # psi[i_b, j] = -sum_jj W[|j - jj|, jj].
    dj = np.abs(np.arange(nh)[:, None] - np.arange(nh)[None, :])  # (j, jj)
    cols = np.arange(nh)[None, :]
    for i_b in (0, nw - 1):
        w = gpc[i_b] @ pcurr  # (nh_d, nh_jj): one N^3 matmul
        psi[i_b, :] = -w[dj, cols].sum(axis=1)

    # Horizontal edges: d is a function of jj alone, so the whole edge is
    # one tensordot over (d, ii).
    psi[:, 0] = -np.tensordot(gpc, pcurr, axes=([1, 2], [1, 0]))
    psi[:, -1] = -np.tensordot(gpc, pcurr[:, ::-1], axes=([1, 2], [1, 0]))
    return psi


@dataclass
class PfluxBase:
    """Shared driver for the ``pflux_`` computation.

    ``compute`` forms the plasma boundary flux, the interior RHS and the
    Dirichlet solve, then adds the external (coil) flux.  Subclasses choose
    the boundary-sum kernel.
    """

    grid: RZGrid
    tables: BoundaryGreensTables
    solver: GSInteriorSolver

    def __post_init__(self) -> None:
        if self.tables.grid.shape != self.grid.shape:
            raise GridError("Green tables built for a different grid")
        if self.solver.grid.shape != self.grid.shape:
            raise GridError("solver built for a different grid")

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def compute(self, pcurr: np.ndarray, psi_external: np.ndarray | None = None) -> np.ndarray:
        """Full flux from node currents ``pcurr`` [(nw, nh), amperes].

        ``psi_external`` is the vacuum flux of the PF coils (added by
        superposition).  Returns the total ``(nw, nh)`` flux.
        """
        grid = self.grid
        pcurr = np.asarray(pcurr, dtype=float)
        if pcurr.shape != grid.shape:
            raise GridError(f"pcurr shape {pcurr.shape} != grid {grid.shape}")
        # The paper's kernels compute -sum(G * pcurr); feeding -pcurr gives
        # the physically signed +sum(G * pcurr).
        psi_edge = self._boundary_flux(-pcurr)
        rhs = -(MU0 / grid.cell_area) * grid.rr * pcurr
        psi_plasma = self.solver.solve(rhs, psi_edge)
        if psi_external is None:
            return psi_plasma
        psi_external = np.asarray(psi_external, dtype=float)
        if psi_external.shape != grid.shape:
            raise GridError("psi_external shape mismatch")
        return psi_plasma + psi_external


class PfluxReference(PfluxBase):
    """``pflux_`` with the pure-loop boundary kernel (the slow baseline)."""

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        flat = boundary_flux_reference(
            self.tables.fortran_view(),
            self.grid.flatten(pcurr),
            self.grid.nw,
            self.grid.nh,
        )
        return self.grid.unflatten(flat)


class PfluxVectorized(PfluxBase):
    """``pflux_`` with the BLAS boundary kernels (the optimized path)."""

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        return boundary_flux_vectorized(self.tables, pcurr)
