"""The ``pflux_`` subroutine: poloidal flux from the grid current.

This is the routine the paper GPU-offloads — 47-92 % of ``fit_`` time on a
CPU core (Table 2).  It has three parts:

1. **Boundary Green sums** — the O(N^3) loop nests of Figures 2/3: for
   every node on the edge of the computational box, sum the precomputed
   Green table against all ``nw x nh`` node currents.  Two implementations
   are provided:

   * :func:`boundary_flux_reference` — a line-by-line translation of the
     paper's Fortran loops (including its sign convention, the
     ``kk=(nw-1)*nh+j`` flattening and the ``mj=|j-jj|`` table indexing).
     This is the "original code" analog: pure Python loops, kept for
     correctness comparison and as the slow baseline in the real
     wall-clock benchmarks.
   * :func:`boundary_flux_vectorized` — the same arithmetic cast as BLAS
     contractions (one ``(nh,nw)x(nw,nh)`` matmul per vertical edge, one
     ``tensordot`` per horizontal edge), the "optimized" analog and the
     numeric payload executed by the simulated GPU kernels.

2. **Right-hand side** — ``-mu0 R J_phi`` over the grid (O(N^2)).

3. **Interior solve** — Dirichlet solve with the boundary sums (plus the
   external coil flux) as edge data.

Both implementations produce bit-comparable fluxes; the test suite checks
them against each other and against direct Green-function superposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.markers import hot_path
from repro.efit.grid import RZGrid
from repro.efit.solvers.base import GSInteriorSolver
from repro.efit.tables import BoundaryGreensTables
from repro.errors import GridError
from repro.utils.constants import MU0

__all__ = [
    "boundary_flux_reference",
    "boundary_flux_vectorized",
    "boundary_flux_operator",
    "edge_flux_operator",
    "edge_node_indices",
    "PfluxBase",
    "PfluxReference",
    "PfluxVectorized",
    "PfluxOperator",
    "PfluxStructured",
]


def boundary_flux_reference(gridpc: np.ndarray, pcurr: np.ndarray, nw: int, nh: int) -> np.ndarray:
    """Paper Figure 2/3 boundary loops, translated loop-for-loop.

    Parameters
    ----------
    gridpc:
        The ``(nw*nh, nw)`` Fortran-layout Green table
        (:meth:`BoundaryGreensTables.fortran_view`), row ``i_b*nh + |dj|``.
    pcurr:
        Flat node currents in EFIT ordering ``kkkk = ii*nh + jj``.  Note
        the kernel keeps the paper's ``psi = -sum(gridpc * pcurr)`` sign;
        callers wanting physical flux pass ``-pcurr`` (see
        :class:`PfluxBase`).

    Returns the flat ``(nw*nh,)`` flux vector with only the edge entries
    filled.
    """
    if gridpc.shape != (nw * nh, nw):
        raise GridError(f"gridpc shape {gridpc.shape} != {(nw * nh, nw)}")
    if pcurr.shape != (nw * nh,):
        raise GridError(f"pcurr length {pcurr.shape} != {nw * nh}")
    psi = np.zeros(nw * nh)

    # --- left (i_b = 0) and right (i_b = nw-1) edges: the paper's loop ----
    for j in range(nh):
        kk = (nw - 1) * nh + j
        tempsum1 = 0.0
        tempsum2 = 0.0
        for ii in range(nw):
            for jj in range(nh):
                kkkk = ii * nh + jj
                mj = abs(j - jj)
                mk = (nw - 1) * nh + mj
                tempsum1 = tempsum1 - gridpc[mj, ii] * pcurr[kkkk]
                tempsum2 = tempsum2 - gridpc[mk, ii] * pcurr[kkkk]
        psi[j] = tempsum1
        psi[kk] = tempsum2

    # --- bottom (j_b = 0) and top (j_b = nh-1) edges: analogous loop ------
    for i in range(nw):
        kb = i * nh
        kt = i * nh + (nh - 1)
        tempsum1 = 0.0
        tempsum2 = 0.0
        for ii in range(nw):
            for jj in range(nh):
                kkkk = ii * nh + jj
                mb = i * nh + jj
                mt = i * nh + (nh - 1 - jj)
                tempsum1 = tempsum1 - gridpc[mb, ii] * pcurr[kkkk]
                tempsum2 = tempsum2 - gridpc[mt, ii] * pcurr[kkkk]
        psi[kb] = tempsum1
        psi[kt] = tempsum2
    return psi


def boundary_flux_vectorized(tables: BoundaryGreensTables, pcurr: np.ndarray) -> np.ndarray:
    """BLAS form of :func:`boundary_flux_reference` (same sign convention).

    ``pcurr`` is the ``(nw, nh)`` node-current grid.  Returns an
    ``(nw, nh)`` field with only the edge ring filled.
    """
    grid = tables.grid
    nw, nh = grid.nw, grid.nh
    pcurr = np.asarray(pcurr, dtype=float)
    if pcurr.shape != grid.shape:
        raise GridError(f"pcurr shape {pcurr.shape} != grid {grid.shape}")
    gpc = tables.gpc
    psi = np.zeros(grid.shape)

    # Vertical edges: W[d, jj] = sum_ii gpc[i_b, d, ii] pcurr[ii, jj];
    # psi[i_b, j] = -sum_jj W[|j - jj|, jj].
    dj = np.abs(np.arange(nh)[:, None] - np.arange(nh)[None, :])  # (j, jj)
    cols = np.arange(nh)[None, :]
    for i_b in (0, nw - 1):
        w = gpc[i_b] @ pcurr  # (nh_d, nh_jj): one N^3 matmul
        psi[i_b, :] = -w[dj, cols].sum(axis=1)

    # Horizontal edges: d is a function of jj alone, so the whole edge is
    # one tensordot over (d, ii).
    psi[:, 0] = -np.tensordot(gpc, pcurr, axes=([1, 2], [1, 0]))
    psi[:, -1] = -np.tensordot(gpc, pcurr[:, ::-1], axes=([1, 2], [1, 0]))
    return psi


def edge_node_indices(nw: int, nh: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonical (i, j) indices of the grid-edge ring.

    Ordering: left column (``i=0``, all ``j``), right column (``i=nw-1``),
    bottom row interior (``j=0``, ``i=1..nw-2``), top row interior
    (``j=nh-1``).  The four corners belong to the vertical edges.  Length
    is ``2*nw + 2*nh - 4``, matching :attr:`RZGrid.n_boundary`.
    """
    if nw < 3 or nh < 3:
        raise GridError(f"grid must be at least 3x3, got {nw}x{nh}")
    ei = np.concatenate(
        [
            np.zeros(nh, dtype=np.intp),
            np.full(nh, nw - 1, dtype=np.intp),
            np.arange(1, nw - 1, dtype=np.intp),
            np.arange(1, nw - 1, dtype=np.intp),
        ]
    )
    ej = np.concatenate(
        [
            np.arange(nh, dtype=np.intp),
            np.arange(nh, dtype=np.intp),
            np.zeros(nw - 2, dtype=np.intp),
            np.full(nw - 2, nh - 1, dtype=np.intp),
        ]
    )
    return ei, ej


def edge_flux_operator(tables: BoundaryGreensTables) -> np.ndarray:
    """Factor the boundary Green sums into one dense edge operator.

    Returns the ``(n_edge, nw*nh)`` matrix ``E`` such that
    ``E @ pcurr_flat`` equals the boundary sums of
    :func:`boundary_flux_reference` / :func:`boundary_flux_vectorized`
    (same ``psi = -sum(G * pcurr)`` sign convention), with edge nodes
    ordered by :func:`edge_node_indices`.  Columns follow the grid's
    Fortran flattening ``kkkk = ii*nh + jj``.

    The factorisation turns the four per-edge contractions into a single
    GEMM — and, stacking ``B`` current columns, into one
    ``(n_edge, nw*nh) @ (nw*nh, B)`` product that computes the boundary
    flux of a whole batch of time slices at once
    (:func:`boundary_flux_operator`).  At the corner nodes the vertical
    and horizontal Green rows coincide analytically (``|j - jj|``
    degenerates to ``jj`` or ``nh-1-jj``), so the operator is unambiguous.

    Storage is ``(2*nw + 2*nh - 4) * nw * nh`` doubles — 8.6 MB at 65x65,
    68 MB at 129x129 — built once per grid and shared across slices.
    """
    grid = tables.grid
    nw, nh = grid.nw, grid.nh
    gpc = tables.gpc
    dj = np.abs(np.arange(nh)[:, None] - np.arange(nh)[None, :])  # (j, jj)
    # Vertical edges: row (i_b, j) holds gpc[i_b, |j - jj|, ii], laid out
    # (j, ii, jj) to match the Fortran column flattening.
    left = np.transpose(gpc[0][dj], (0, 2, 1)).reshape(nh, nw * nh)
    right = np.transpose(gpc[nw - 1][dj], (0, 2, 1)).reshape(nh, nw * nh)
    # Horizontal edges: the Z offset is a function of jj alone.
    bottom = np.transpose(gpc, (0, 2, 1))[1:-1].reshape(nw - 2, nw * nh)
    top = np.transpose(gpc[:, ::-1, :], (0, 2, 1))[1:-1].reshape(nw - 2, nw * nh)
    return -np.concatenate([left, right, bottom, top], axis=0)


@hot_path
def boundary_flux_operator(
    operator: np.ndarray, pcurr_flat: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Boundary sums as one GEMM against the precomputed edge operator.

    ``pcurr_flat`` is either one flat current vector ``(nw*nh,)`` or a
    batch stacked column-wise ``(nw*nh, B)``; the result is the matching
    ``(n_edge,)`` or ``(n_edge, B)`` edge flux in
    :func:`edge_node_indices` order.  ``out`` lets callers reuse a
    workspace buffer (zero-allocation steady state).
    """
    if pcurr_flat.shape[0] != operator.shape[1]:
        raise GridError(
            f"pcurr length {pcurr_flat.shape[0]} != operator columns {operator.shape[1]}"
        )
    expected = (operator.shape[0],) + pcurr_flat.shape[1:]
    if out is not None and out.shape != expected:
        raise GridError(f"out shape {out.shape} != {expected}")
    return np.matmul(operator, pcurr_flat, out=out)


@dataclass
class PfluxBase:
    """Shared driver for the ``pflux_`` computation.

    ``compute`` forms the plasma boundary flux, the interior RHS and the
    Dirichlet solve, then adds the external (coil) flux.  Subclasses choose
    the boundary-sum kernel.
    """

    grid: RZGrid
    tables: BoundaryGreensTables
    solver: GSInteriorSolver

    def __post_init__(self) -> None:
        if self.tables.grid.shape != self.grid.shape:
            raise GridError("Green tables built for a different grid")
        if self.solver.grid.shape != self.grid.shape:
            raise GridError("solver built for a different grid")

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def compute(self, pcurr: np.ndarray, psi_external: np.ndarray | None = None) -> np.ndarray:
        """Full flux from node currents ``pcurr`` [(nw, nh), amperes].

        ``psi_external`` is the vacuum flux of the PF coils (added by
        superposition).  Returns the total ``(nw, nh)`` flux.
        """
        grid = self.grid
        pcurr = np.asarray(pcurr, dtype=float)
        if pcurr.shape != grid.shape:
            raise GridError(f"pcurr shape {pcurr.shape} != grid {grid.shape}")
        # The paper's kernels compute -sum(G * pcurr); feeding -pcurr gives
        # the physically signed +sum(G * pcurr).
        psi_edge = self._boundary_flux(-pcurr)
        rhs = -(MU0 / grid.cell_area) * grid.rr * pcurr
        psi_plasma = self.solver.solve(rhs, psi_edge)
        if psi_external is None:
            return psi_plasma
        psi_external = np.asarray(psi_external, dtype=float)
        if psi_external.shape != grid.shape:
            raise GridError("psi_external shape mismatch")
        return psi_plasma + psi_external


class PfluxReference(PfluxBase):
    """``pflux_`` with the pure-loop boundary kernel (the slow baseline)."""

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        flat = boundary_flux_reference(
            self.tables.fortran_view(),
            self.grid.flatten(pcurr),
            self.grid.nw,
            self.grid.nh,
        )
        return self.grid.unflatten(flat)


class PfluxVectorized(PfluxBase):
    """``pflux_`` with the BLAS boundary kernels (the optimized path)."""

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        return boundary_flux_vectorized(self.tables, pcurr)


class PfluxOperator(PfluxBase):
    """``pflux_`` with the precomputed dense edge operator.

    Trades memory (one ``(n_edge, nw*nh)`` matrix per grid) for a single
    GEMV per call — the building block of the batched multi-slice engine,
    where the same operator serves whole batches with one GEMM.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self.operator = edge_flux_operator(self.tables)
        self._edge_i, self._edge_j = edge_node_indices(self.grid.nw, self.grid.nh)

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        psi = np.zeros(self.grid.shape)
        psi[self._edge_i, self._edge_j] = boundary_flux_operator(
            self.operator, pcurr.reshape(self.grid.size)
        )
        return psi


class PfluxStructured(PfluxBase):
    """``pflux_`` with a structured edge operator (``boundary_method``).

    Same contract as :class:`PfluxOperator` but the boundary sums run
    through any :class:`~repro.efit.operators.EdgeOperator` — the
    FFT/Toeplitz or low-rank compressed forms that beat the dense GEMM
    on large grids (see :mod:`repro.efit.operators.edge`).
    """

    def __init__(self, grid, tables, solver, operator) -> None:
        super().__init__(grid, tables, solver)
        if operator.grid.shape != grid.shape:
            raise GridError("edge operator built for a different grid")
        self.operator = operator
        self._edge_i, self._edge_j = edge_node_indices(grid.nw, grid.nh)

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        psi = np.zeros(self.grid.shape)
        psi[self._edge_i, self._edge_j] = self.operator.apply(
            pcurr.reshape(self.grid.size)
        )
        return psi
