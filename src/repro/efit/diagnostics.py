"""Magnetic diagnostics and their response functions.

EFIT fits the plasma current to external magnetic data: poloidal flux
loops, poloidal-field (Mirnov) probes, and a full Rogowski coil measuring
the total plasma current.  Each diagnostic is linear in every current
source, so its *response function* — the Green function evaluated from the
diagnostic to each grid node and each PF coil — fully describes it.
:class:`DiagnosticSet` assembles those response matrices once per grid
(part of the ``green_`` setup) and the fit reuses them every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.efit.greens import greens_br, greens_bz, greens_psi
from repro.efit.grid import RZGrid
from repro.efit.machine import Tokamak
from repro.errors import MeasurementError

__all__ = ["FluxLoop", "MagneticProbe", "RogowskiCoil", "DiagnosticSet"]


@dataclass(frozen=True)
class FluxLoop:
    """A toroidal flux loop measuring poloidal flux per radian at (r, z)."""

    name: str
    r: float
    z: float

    def __post_init__(self) -> None:
        if self.r <= 0.0:
            raise MeasurementError(f"flux loop {self.name} at R <= 0")

    def response_to_grid(self, grid: RZGrid) -> np.ndarray:
        """Flux per ampere at each grid node, shape ``(nw, nh)``."""
        return greens_psi(self.r, self.z, grid.rr, grid.zz)

    def response_to_coils(self, machine: Tokamak) -> np.ndarray:
        return np.array([c.psi_at(np.asarray(self.r), np.asarray(self.z)) for c in machine.coils])


@dataclass(frozen=True)
class MagneticProbe:
    """A local B-field probe at (r, z) oriented ``angle`` radians from the
    R axis in the poloidal plane; measures ``Br cos(a) + Bz sin(a)``."""

    name: str
    r: float
    z: float
    angle: float

    def __post_init__(self) -> None:
        if self.r <= 0.0:
            raise MeasurementError(f"probe {self.name} at R <= 0")

    def response_to_grid(self, grid: RZGrid) -> np.ndarray:
        br = greens_br(self.r, self.z, grid.rr, grid.zz)
        bz = greens_bz(self.r, self.z, grid.rr, grid.zz)
        return np.cos(self.angle) * br + np.sin(self.angle) * bz

    def response_to_coils(self, machine: Tokamak) -> np.ndarray:
        out = np.empty(machine.n_coils)
        for k, coil in enumerate(machine.coils):
            br = coil.br_at(np.asarray(self.r), np.asarray(self.z))
            bz = coil.bz_at(np.asarray(self.r), np.asarray(self.z))
            out[k] = np.cos(self.angle) * br + np.sin(self.angle) * bz
        return out


@dataclass(frozen=True)
class MSEChannel:
    """A motional-Stark-effect pitch-angle channel.

    MSE polarimetry views a neutral beam and measures the local magnetic
    pitch ``tan(gamma) = B_z / B_phi`` *inside* the plasma — the internal
    constraint that breaks the ``p'``/``FF'`` degeneracy external
    magnetics leave (the "kinetic EFIT" upgrade of Lao 2022, the EFIT-AI
    paper this work belongs to).  With the vacuum toroidal field
    approximation ``B_phi = F_vac / R`` the measurement is linear in every
    poloidal current source: ``tan(gamma) = B_z R / F_vac``.
    """

    name: str
    r: float
    z: float
    #: Vacuum ``F = R B_phi`` used to normalise the pitch [T m].
    f_vacuum: float

    def __post_init__(self) -> None:
        if self.r <= 0.0:
            raise MeasurementError(f"MSE channel {self.name} at R <= 0")
        if self.f_vacuum == 0.0:
            raise MeasurementError(f"MSE channel {self.name}: zero vacuum field")

    def response_to_grid(self, grid: RZGrid) -> np.ndarray:
        bz = greens_bz(self.r, self.z, grid.rr, grid.zz)
        return bz * self.r / self.f_vacuum

    def response_to_coils(self, machine: Tokamak) -> np.ndarray:
        out = np.empty(machine.n_coils)
        for k, coil in enumerate(machine.coils):
            out[k] = coil.bz_at(np.asarray(self.r), np.asarray(self.z)) * self.r / self.f_vacuum
        return out


@dataclass(frozen=True)
class RogowskiCoil:
    """A full Rogowski loop: measures the total enclosed plasma current."""

    name: str = "IP"

    def response_to_grid(self, grid: RZGrid) -> np.ndarray:
        return np.ones(grid.shape)

    def response_to_coils(self, machine: Tokamak) -> np.ndarray:
        # The plasma Rogowski excludes the PF coils by construction.
        return np.zeros(machine.n_coils)


@dataclass(frozen=True)
class DiagnosticSet:
    """The full diagnostic complement of a machine.

    Row ordering everywhere: flux loops, probes, MSE channels (optional),
    Rogowski last (so ``values[-1]`` is always the plasma current).
    """

    flux_loops: tuple[FluxLoop, ...]
    probes: tuple[MagneticProbe, ...]
    rogowski: RogowskiCoil
    mse: tuple[MSEChannel, ...] = ()

    def __post_init__(self) -> None:
        names = (
            [d.name for d in self.flux_loops]
            + [d.name for d in self.probes]
            + [d.name for d in self.mse]
        )
        if len(set(names)) != len(names):
            raise MeasurementError("duplicate diagnostic names")

    @property
    def n_measurements(self) -> int:
        """Flux loops + probes + MSE + Rogowski."""
        return len(self.flux_loops) + len(self.probes) + len(self.mse) + 1

    @property
    def names(self) -> list[str]:
        return (
            [d.name for d in self.flux_loops]
            + [d.name for d in self.probes]
            + [d.name for d in self.mse]
            + [self.rogowski.name]
        )

    def _ordered(self):
        return list(self.flux_loops) + list(self.probes) + list(self.mse) + [self.rogowski]

    def response_to_grid(self, grid: RZGrid) -> np.ndarray:
        """Stacked grid response matrix, shape ``(n_measurements, nw*nh)``."""
        rows = np.empty((self.n_measurements, grid.size))
        for i, diag in enumerate(self._ordered()):
            rows[i] = grid.flatten(diag.response_to_grid(grid))
        return rows

    def response_to_coils(self, machine: Tokamak) -> np.ndarray:
        """Stacked coil response matrix, shape ``(n_measurements, n_coils)``."""
        rows = np.empty((self.n_measurements, machine.n_coils))
        for i, diag in enumerate(self._ordered()):
            rows[i] = diag.response_to_coils(machine)
        return rows

    def response_to_vessel(self, machine: Tokamak) -> np.ndarray:
        """Response to unit vessel-segment currents,
        shape ``(n_measurements, n_vessel)``.

        Vessel segments are single filaments, so each diagnostic's
        response is its grid Green function evaluated at the segment
        (flux loops see psi, probes see the projected field, the Rogowski
        sees nothing — vessel currents flow outside the plasma contour,
        MSE sees the normalised Bz)."""
        from repro.efit.greens import greens_br, greens_bz, greens_psi

        rows = np.zeros((self.n_measurements, machine.n_vessel))
        for j, seg in enumerate(machine.vessel):
            i = 0
            for loop in self.flux_loops:
                rows[i, j] = greens_psi(loop.r, loop.z, seg.r, seg.z)
                i += 1
            for probe in self.probes:
                br = greens_br(probe.r, probe.z, seg.r, seg.z)
                bz = greens_bz(probe.r, probe.z, seg.r, seg.z)
                rows[i, j] = np.cos(probe.angle) * br + np.sin(probe.angle) * bz
                i += 1
            for ch in self.mse:
                rows[i, j] = greens_bz(ch.r, ch.z, seg.r, seg.z) * ch.r / ch.f_vacuum
                i += 1
            rows[i, j] = 0.0  # Rogowski: plasma current only
        return rows

    @classmethod
    def for_machine(
        cls,
        machine: Tokamak,
        *,
        n_flux_loops: int = 40,
        n_probes: int = 60,
        n_mse: int = 0,
        standoff: float = 1.12,
    ) -> "DiagnosticSet":
        """Place diagnostics on a contour ``standoff`` times the limiter.

        Flux loops and probes are spread uniformly in poloidal angle on a
        scaled copy of the limiter (just outside the plasma, inside the
        vessel) — the usual arrangement.  Probe orientations alternate
        between tangential and normal, as on DIII-D.  ``n_mse`` channels,
        if requested, view the outboard midplane (the DIII-D beam line).
        """
        if n_flux_loops < 4 or n_probes < 4:
            raise MeasurementError("too few diagnostics to constrain a fit")
        lr, lz = machine.limiter.r, machine.limiter.z
        r0 = float(lr.mean())
        z0 = float(lz.mean())

        def ring(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            theta = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
            # Scale the limiter about its centroid.
            a = np.interp(
                theta,
                np.arctan2(lz - z0, lr - r0) % (2 * np.pi),
                np.hypot(lr - r0, lz - z0),
                period=2 * np.pi,
            )
            rr = r0 + standoff * a * np.cos(theta)
            zz = z0 + standoff * a * np.sin(theta)
            return rr, zz, theta

        fr, fz, _ = ring(n_flux_loops)
        loops = tuple(
            FluxLoop(f"PSF{i:03d}", float(r), float(z)) for i, (r, z) in enumerate(zip(fr, fz))
        )
        pr, pz, ptheta = ring(n_probes)
        probes = []
        for i, (r, z, th) in enumerate(zip(pr, pz, ptheta)):
            # Tangential to the ring for even i, normal for odd i.
            angle = th + (np.pi / 2.0 if i % 2 == 0 else 0.0)
            probes.append(MagneticProbe(f"MPI{i:03d}", float(r), float(z), float(angle)))
        mse: list[MSEChannel] = []
        if n_mse:
            # Outboard midplane chord from near the axis to near the wall.
            r_lim_out = float(lr.max())
            r_axis = r0
            radii = np.linspace(r_axis + 0.05, 0.98 * r_lim_out, n_mse)
            for i, r in enumerate(radii):
                mse.append(MSEChannel(f"MSE{i:03d}", float(r), 0.0, machine.f_vacuum))
        return cls(
            flux_loops=loops,
            probes=tuple(probes),
            rogowski=RogowskiCoil(),
            mse=tuple(mse),
        )
