"""The offload executor: runs lowered kernels on a simulated device.

One :class:`OffloadExecutor` represents one device context (one GPU, one
compiler's runtime, one environment).  It owns the clock, the counters and
the data manager, and exposes the three phases of an offloaded subroutine
invocation:

1. :meth:`begin_invocation` — allocate per-call work arrays and make
   everything the kernels touch device-accessible (page migration under
   unified memory; explicit/implicit maps on Intel);
2. :meth:`launch` — charge launch overhead plus roofline time for each
   kernel and update the profiler counters;
3. :meth:`end_invocation` — return results to the host and free the work
   arrays (whose pages the allocator may or may not retain — Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.directives.ir import AccessMode, LoopNest
from repro.errors import LaunchError, RuntimeModelError
from repro.hardware.arch import GPUArchitecture
from repro.hardware.roofline import occupancy_factor, roofline_time
from repro.obs.hooks import NULL_HOOKS, ObservationHooks
from repro.profiling.timer import Clock, VirtualClock
from repro.runtime.allocator import AllocationPolicy, AllocatorModel
from repro.runtime.counters import CounterSet
from repro.runtime.kernel import ExecutionPlan
from repro.runtime.memory import (
    DeviceArray,
    Direction,
    ExplicitDataEnvironment,
    UnifiedMemory,
)

__all__ = ["OffloadExecutor"]


@dataclass
class OffloadExecutor:
    """One simulated device context."""

    arch: GPUArchitecture
    allocation_policy: AllocationPolicy = AllocationPolicy.ARENA_REUSE
    #: Intel-path switch: ``True`` wraps each invocation in a
    #: ``target data`` region; ``False`` lets every kernel map its operands
    #: (the unoptimised behaviour Section 6.2 warns about).
    use_target_data: bool = True
    clock: Clock = field(default_factory=VirtualClock)
    counters: CounterSet = field(default_factory=CounterSet)
    #: Kernel-level observation hooks; each :meth:`launch` emits a
    #: device-clock span with flops/bytes/launch attributes.
    hooks: ObservationHooks = NULL_HOOKS
    #: Directive flavor of the build driving this context (for span
    #: attribution in traces; free-form, e.g. ``"omp"``/``"acc"``).
    model: str = ""

    def __post_init__(self) -> None:
        self.allocator = AllocatorModel(self.allocation_policy)
        if self.arch.unified_memory:
            self._um: UnifiedMemory | None = UnifiedMemory(
                self.arch, self.allocator, self.clock, self.counters
            )
            self._env: ExplicitDataEnvironment | None = None
        else:
            self._um = None
            self._env = ExplicitDataEnvironment(self.arch, self.clock, self.counters)
        self._staged_persistent: set[str] = set()
        self._in_invocation = False
        self._invocation_arrays: dict[str, DeviceArray] = {}

    # -- invocation lifecycle ------------------------------------------------------
    def begin_invocation(self, arrays: list[DeviceArray]) -> None:
        """Start one offloaded subroutine call touching ``arrays``."""
        if self._in_invocation:
            raise RuntimeModelError("nested invocations are not modeled")
        self._in_invocation = True
        self._invocation_arrays = {a.name: a for a in arrays}
        # Host-side allocation of the per-call work arrays.
        for arr in arrays:
            if arr.persistent:
                if not self.allocator.is_live(arr.name):
                    self.allocator.allocate(arr.name, arr.nbytes)
            else:
                self.allocator.allocate(arr.name, arr.nbytes)
        if self._um is not None:
            touches = [
                (self.allocator.live(a.name), a.direction) for a in arrays
            ]
            self._um.device_touch(touches)
        else:
            assert self._env is not None
            if self.use_target_data:
                # RESIDENT data (the Green tables) is staged once and kept;
                # host-visible inputs/outputs are mapped around each call —
                # the "!$omp target data map(to:)(from:)" strategy of
                # Section 6.2.  SCRATCH arrays live on the device only.
                resident_new = [
                    a
                    for a in arrays
                    if a.direction is Direction.RESIDENT and not self._env.is_staged(a.name)
                ]
                region = [
                    a
                    for a in arrays
                    if a.direction in (Direction.IN, Direction.OUT, Direction.INOUT)
                ]
                self._env.enter(resident_new + region)
                self._region_arrays = region
            else:
                self._region_arrays = []

    def launch(self, nest: LoopNest, plan: ExecutionPlan) -> float:
        """Execute one lowered kernel; returns the modeled seconds."""
        if not self._in_invocation:
            raise LaunchError(f"kernel {nest.name}: launch outside an invocation")
        if self._env is not None and not self.use_target_data:
            # Unoptimised Intel: every kernel maps its own operands.
            operands = [
                self._invocation_arrays[a.name]
                for a in nest.arrays
                if a.name in self._invocation_arrays
            ]
            self._env.implicit_kernel_maps(operands)

        if plan.occupancy_sensitive:
            occupancy = occupancy_factor(self.arch, plan.exposed_threads)
        else:
            occupancy = 1.0
        bytes_moved = nest.streaming_bytes * plan.traffic_factor
        seconds = plan.launches * plan.launch_overhead * self.arch.kernel_launch_us * 1e-6 + roofline_time(
            self.arch,
            nest.total_flops,
            bytes_moved,
            compute_efficiency=plan.compute_efficiency * occupancy,
            bandwidth_efficiency=plan.bandwidth_efficiency * occupancy,
        )
        start = self.clock.now()
        self.clock.advance(seconds)
        if self.hooks.enabled:
            self.hooks.kernel(
                nest.name,
                start=start,
                seconds=seconds,
                flops=nest.total_flops,
                hbm_bytes=bytes_moved,
                launches=plan.launches,
                arch=self.arch.name,
                model=self.model,
            )
        write_fraction = self._write_fraction(nest)
        self.counters.record_launch(
            nest.name,
            flops=nest.total_flops,
            read_bytes=bytes_moved * (1.0 - write_fraction),
            write_bytes=bytes_moved * write_fraction,
            seconds=seconds,
        )
        return seconds

    def end_invocation(self) -> None:
        """Return results to the host; free the per-call work arrays."""
        if not self._in_invocation:
            raise RuntimeModelError("end_invocation without begin_invocation")
        arrays = list(self._invocation_arrays.values())
        if self._um is not None:
            touches = [(self.allocator.live(a.name), a.direction) for a in arrays]
            self._um.host_touch(touches)
        else:
            assert self._env is not None
            if self.use_target_data:
                self._env.exit(self._region_arrays)
        for arr in arrays:
            if not arr.persistent:
                self.allocator.free(arr.name)
        self._invocation_arrays = {}
        self._in_invocation = False

    # -- helpers --------------------------------------------------------------------
    @staticmethod
    def _write_fraction(nest: LoopNest) -> float:
        """Fraction of the nest's traffic that is stores, from the access
        declaration (used only to split the read/write counters)."""
        reads = writes = 0.0
        for a in nest.arrays:
            vol = a.accesses_per_iteration * a.bytes_per_element
            if a.mode is AccessMode.READ:
                reads += vol
            elif a.mode is AccessMode.WRITE:
                writes += vol
            else:
                reads += 0.5 * vol
                writes += 0.5 * vol
        total = reads + writes
        if total == 0.0:
            return 0.0
        return writes / total
