"""Hardware-counter emulation.

The paper's Figure 5 is built from profiler counters: ``dram__bytes.sum``
(Nsight Compute), the ``TCC_EA_RDREQ/WRREQ`` request counters (rocprof)
and Advisor's memory-workload analysis.  :class:`CounterSet` accumulates
the same quantities per kernel and renders tool-flavoured reports so the
benchmark harness can "run the profiler" on a simulated execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuntimeModelError

__all__ = [
    "KernelCounters",
    "CounterSet",
    "WorkspaceCounters",
    "CacheCounters",
    "SchedulerCounters",
]


@dataclass
class WorkspaceCounters:
    """Allocation/reuse accounting of a preallocated-buffer arena.

    The batched reconstruction engine asserts *zero steady-state
    allocation* through these counters: after warm-up, ``allocations``
    must stop growing while ``reuses`` keeps climbing.
    """

    allocations: int = 0
    reuses: int = 0
    allocated_bytes: int = 0
    resident_bytes: int = 0

    def record_allocation(self, nbytes: int, *, freed_bytes: int = 0) -> None:
        """Account one fresh buffer allocation (optionally replacing one)."""
        if nbytes < 0 or freed_bytes < 0:
            raise RuntimeModelError("negative workspace byte count")
        self.allocations += 1
        self.allocated_bytes += nbytes
        self.resident_bytes += nbytes - freed_bytes

    def record_reuse(self) -> None:
        """Account one request served from an already-allocated buffer."""
        self.reuses += 1

    @property
    def requests(self) -> int:
        return self.allocations + self.reuses

    @property
    def reuse_fraction(self) -> float:
        """Share of buffer requests served without allocating (0 when idle)."""
        total = self.requests
        return self.reuses / total if total else 0.0

    def snapshot(self) -> "WorkspaceCounters":
        """A frozen-in-time copy, for before/after steady-state checks."""
        return WorkspaceCounters(
            allocations=self.allocations,
            reuses=self.reuses,
            allocated_bytes=self.allocated_bytes,
            resident_bytes=self.resident_bytes,
        )

    def allocations_since(self, previous: "WorkspaceCounters") -> int:
        """Fresh allocations since ``previous`` (a :meth:`snapshot`).

        The statically certified hot-path functions (see
        ``repro.analysis``) must report zero here once warm.
        """
        delta = self.allocations - previous.allocations
        if delta < 0:
            raise RuntimeModelError(
                "allocation counter moved backwards: snapshot is not from this counter's past"
            )
        return delta

    def reset(self) -> None:
        self.allocations = 0
        self.reuses = 0
        self.allocated_bytes = 0
        self.resident_bytes = 0


@dataclass
class CacheCounters:
    """Hit/miss/eviction accounting of a size-bounded object cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stored_bytes: int = 0

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self, nbytes: int) -> None:
        if nbytes < 0:
            raise RuntimeModelError("negative cache byte count")
        self.misses += 1
        self.stored_bytes += nbytes

    def record_eviction(self, nbytes: int) -> None:
        if nbytes < 0:
            raise RuntimeModelError("negative cache byte count")
        self.evictions += 1
        self.stored_bytes -= nbytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stored_bytes = 0


@dataclass
class SchedulerCounters:
    """Job accounting of the multi-process reconstruction scheduler.

    The retry/quarantine path is only trustworthy if it is observable:
    the parallel-stress CI job injects worker crashes and then asserts
    through these counters that every submitted job was either completed
    or quarantined — never silently dropped — and that ``crashes`` and
    ``retries`` actually moved.
    """

    submitted: int = 0
    completed: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    errors: int = 0
    quarantined: int = 0
    worker_restarts: int = 0

    @property
    def accounted(self) -> int:
        """Jobs with a final disposition (completed or quarantined)."""
        return self.completed + self.quarantined

    def snapshot(self) -> "SchedulerCounters":
        """A frozen-in-time copy, for before/after assertions."""
        return SchedulerCounters(
            submitted=self.submitted,
            completed=self.completed,
            retries=self.retries,
            crashes=self.crashes,
            timeouts=self.timeouts,
            errors=self.errors,
            quarantined=self.quarantined,
            worker_restarts=self.worker_restarts,
        )

    def reset(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.retries = 0
        self.crashes = 0
        self.timeouts = 0
        self.errors = 0
        self.quarantined = 0
        self.worker_restarts = 0


@dataclass
class KernelCounters:
    """Per-kernel accumulators."""

    launches: int = 0
    flops: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    device_seconds: float = 0.0

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


@dataclass
class CounterSet:
    """All counters of one simulated device context."""

    kernels: dict[str, KernelCounters] = field(default_factory=dict)
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    page_faults: int = 0
    migrations: int = 0

    def kernel(self, name: str) -> KernelCounters:
        return self.kernels.setdefault(name, KernelCounters())

    def record_launch(
        self,
        name: str,
        *,
        flops: float,
        read_bytes: float,
        write_bytes: float,
        seconds: float,
    ) -> None:
        if min(flops, read_bytes, write_bytes, seconds) < 0:
            raise RuntimeModelError("negative counter update")
        k = self.kernel(name)
        k.launches += 1
        k.flops += flops
        k.dram_read_bytes += read_bytes
        k.dram_write_bytes += write_bytes
        k.device_seconds += seconds

    @property
    def total_dram_bytes(self) -> float:
        return sum(k.dram_bytes for k in self.kernels.values())

    @property
    def total_launches(self) -> int:
        return sum(k.launches for k in self.kernels.values())

    @property
    def total_device_seconds(self) -> float:
        return sum(k.device_seconds for k in self.kernels.values())

    def reset(self) -> None:
        self.kernels.clear()
        self.h2d_bytes = 0.0
        self.d2h_bytes = 0.0
        self.page_faults = 0
        self.migrations = 0

    # -- profiler-flavoured views (Appendix A) -----------------------------------
    def nsight_report(self, kernel: str) -> dict[str, float]:
        """NVIDIA Nsight Compute style: ``dram__bytes.sum``."""
        k = self.kernel(kernel)
        return {
            "dram__bytes.sum": k.dram_bytes,
            "dram__bytes_read.sum": k.dram_read_bytes,
            "dram__bytes_write.sum": k.dram_write_bytes,
            "launch__count": float(k.launches),
        }

    def rocprof_report(self, kernel: str) -> dict[str, float]:
        """AMD rocprof style: EA read/write request counts.

        Inverse of the Appendix A formula — reads modeled as 64 B
        requests, writes as 64 B requests, so
        ``GPU Bytes Moved = 64*(RD + WR)`` reproduces the byte counters.
        """
        k = self.kernel(kernel)
        return {
            "TCC_EA_RDREQ_sum": k.dram_read_bytes / 64.0,
            "TCC_EA_RDREQ_32B_sum": 0.0,
            "TCC_EA_WRREQ_sum": k.dram_write_bytes / 64.0,
            "TCC_EA_WRREQ_64B_sum": k.dram_write_bytes / 64.0,
        }

    def advisor_report(self, kernel: str) -> dict[str, float]:
        """Intel Advisor style: GTI (memory) traffic and FLOP counts."""
        k = self.kernel(kernel)
        return {
            "gpu_memory_bytes": k.dram_bytes,
            "gpu_compute_flop": k.flops,
            "kernel_invocations": float(k.launches),
        }

    @staticmethod
    def rocprof_bytes_moved(report: dict[str, float]) -> float:
        """Appendix A formula applied to a rocprof report."""
        wr64 = report["TCC_EA_WRREQ_64B_sum"]
        wr = report["TCC_EA_WRREQ_sum"]
        rd32 = report["TCC_EA_RDREQ_32B_sum"]
        rd = report["TCC_EA_RDREQ_sum"]
        return 64.0 * wr64 + 32.0 * (wr - wr64) + 32.0 * rd32 + 64.0 * (rd - rd32)
