"""Host allocator model: Cray default mallopt vs ``-hsystem_alloc``.

The paper's Figure 4 shows up to 10x run-time differences on Frontier from
nothing but memory-allocator behaviour.  Mechanism: EFIT's ``pflux_``
allocates and frees work arrays every call.  With the Cray compiler's
default mallopt tuning, freed storage is trimmed back to the OS, so each
call receives *fresh* pages — and under unified memory (``HSA_XNACK=1``)
every fresh page must fault and migrate to the GPU again.  With
``-hsystem_alloc`` / ``CRAY_MALLOPT_OFF=1`` the glibc arenas retain the
pages, allocations are stable across calls, and migration happens once.

:class:`AllocatorModel` captures exactly that: allocations carry a
*generation*; under ``TRIM_ON_FREE`` the generation bumps on every
free/alloc cycle (residency keyed on generation is lost), under
``ARENA_REUSE`` it is stable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MemoryModelError

__all__ = ["AllocationPolicy", "Allocation", "AllocatorModel"]


class AllocationPolicy(enum.Enum):
    """How the host allocator treats freed storage (Figure 4's variable)."""

    #: Cray default mallopt: free() trims to the OS; reallocation yields
    #: fresh pages every call.
    TRIM_ON_FREE = "trim_on_free"
    #: System (glibc) behaviour: arenas retain pages, allocations are
    #: stable.  Selected by ``-hsystem_alloc`` (and the NVHPC/CUDA managed
    #: pool allocator behaves this way out of the box).
    ARENA_REUSE = "arena_reuse"


@dataclass(frozen=True)
class Allocation:
    """A live host allocation: identity is (name, generation)."""

    name: str
    generation: int
    nbytes: float

    @property
    def key(self) -> tuple[str, int]:
        return (self.name, self.generation)


@dataclass
class AllocatorModel:
    """Tracks allocation generations under one policy."""

    policy: AllocationPolicy
    _generations: dict[str, int] = field(default_factory=dict)
    _live: dict[str, Allocation] = field(default_factory=dict)

    def allocate(self, name: str, nbytes: float) -> Allocation:
        if nbytes <= 0:
            raise MemoryModelError(f"allocation {name!r} with nbytes={nbytes}")
        if name in self._live:
            raise MemoryModelError(f"allocation {name!r} already live")
        gen = self._generations.get(name, 0)
        alloc = Allocation(name=name, generation=gen, nbytes=nbytes)
        self._live[name] = alloc
        return alloc

    def free(self, name: str) -> None:
        if name not in self._live:
            raise MemoryModelError(f"free of non-live allocation {name!r}")
        del self._live[name]
        if self.policy is AllocationPolicy.TRIM_ON_FREE:
            # Pages returned to the OS: the next allocation is new memory.
            self._generations[name] = self._generations.get(name, 0) + 1
        # ARENA_REUSE: generation unchanged; the same pages come back.

    def is_live(self, name: str) -> bool:
        return name in self._live

    def live(self, name: str) -> Allocation:
        try:
            return self._live[name]
        except KeyError:
            raise MemoryModelError(f"allocation {name!r} is not live") from None
