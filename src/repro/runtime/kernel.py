"""Execution plans: what a compiler lowering produces for one kernel."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LaunchError

__all__ = ["ExecutionPlan"]


@dataclass(frozen=True)
class ExecutionPlan:
    """The device-side shape of one lowered loop nest.

    Produced by a compiler model from (loop nest, directives,
    architecture); consumed by the executor's cost model.
    """

    kernel_name: str
    #: Work groups (OpenACC gangs / OpenMP teams).
    teams: int
    #: Work-items per team (workers x vector lanes / thread block size).
    threads_per_team: int
    #: HBM traffic as a multiple of the nest's *streaming* bytes.  <1 means
    #: the lowering achieves on-chip reuse; >1 means redundant movement
    #: (uncoalesced access, spilled reductions) — the Figure 5 axis.
    traffic_factor: float
    #: Fraction of peak FP64 the generated code can issue at.
    compute_efficiency: float
    #: Additional bandwidth derate from lowering quality (on top of the
    #: occupancy factor the executor applies).
    bandwidth_efficiency: float
    #: Device kernels actually launched for this region (a fused
    #: ``kernels`` region may emit several).
    launches: int = 1
    #: Whether more exposed threads translate into more attained bandwidth.
    #: False models lowerings whose bottleneck is internal serialisation
    #: (CCE's OpenACC reduction path), where extra parallelism cannot help
    #: — the Table 6 saturation.
    occupancy_sensitive: bool = True
    #: Multiplier on the device launch latency for this region (runtime
    #: bookkeeping differences between offload runtimes).
    launch_overhead: float = 1.0
    #: Whether the lowering combines reduction partials in a fixed order.
    #: Tree/serialised reductions reproduce bit-identical sums run to run;
    #: atomics-based lowerings combine in completion order and break the
    #: parallel fleet's bit-identity guarantee — the
    #: ``precision-nondet-reduction`` axis.
    deterministic_reduction: bool = True

    def __post_init__(self) -> None:
        if self.teams < 1 or self.threads_per_team < 1:
            raise LaunchError(f"{self.kernel_name}: empty launch configuration")
        if self.traffic_factor <= 0:
            raise LaunchError(f"{self.kernel_name}: non-positive traffic factor")
        if not (0 < self.compute_efficiency <= 1) or not (0 < self.bandwidth_efficiency <= 1):
            raise LaunchError(f"{self.kernel_name}: efficiencies must be in (0, 1]")
        if self.launches < 1:
            raise LaunchError(f"{self.kernel_name}: needs >= 1 launch")

    @property
    def exposed_threads(self) -> int:
        return self.teams * self.threads_per_team
