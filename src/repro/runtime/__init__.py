"""The simulated offload runtime.

This package plays the role CUDA/ROCm/Level-Zero play on the real
machines: it owns device residency of arrays (page-migrating unified
memory or explicit ``target data`` maps), charges kernel-launch and
data-movement time to a deterministic virtual clock, and accumulates the
hardware counters (DRAM bytes, FLOPs, faults, transfers) that the paper
reads out of Nsight Compute / rocprof / Intel Advisor.
"""

from repro.runtime.counters import CacheCounters, CounterSet, KernelCounters, WorkspaceCounters
from repro.runtime.allocator import AllocatorModel, AllocationPolicy
from repro.runtime.memory import DeviceArray, UnifiedMemory, ExplicitDataEnvironment
from repro.runtime.kernel import ExecutionPlan
from repro.runtime.executor import OffloadExecutor

__all__ = [
    "CacheCounters",
    "CounterSet",
    "KernelCounters",
    "WorkspaceCounters",
    "AllocatorModel",
    "AllocationPolicy",
    "DeviceArray",
    "UnifiedMemory",
    "ExplicitDataEnvironment",
    "ExecutionPlan",
    "OffloadExecutor",
]
