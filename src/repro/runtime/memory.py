"""Device data management: unified memory and explicit data environments.

Two regimes, matching the three platforms (Table 3 / Section 4.2):

* :class:`UnifiedMemory` — NVIDIA (``-gpu=managed``) and AMD
  (``CRAY_ACC_USE_UNIFIED_MEM=1`` + ``HSA_XNACK=1``): arrays migrate to
  the device on first touch, page batch by page batch, and stay resident
  as long as their host allocation is stable (see
  :mod:`repro.runtime.allocator`).  Host writes invalidate residency;
  host reads of device-written arrays migrate data back.

* :class:`ExplicitDataEnvironment` — Intel PVC, where unified memory "is
  not available yet": without an enclosing ``target data`` region every
  kernel implicitly copies its referenced arrays in and out; with one, the
  transfers happen at region entry/exit only (the optimisation Section 6.2
  describes).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import MapError, MemoryModelError
from repro.hardware.arch import GPUArchitecture
from repro.profiling.timer import Clock
from repro.runtime.allocator import Allocation, AllocatorModel
from repro.runtime.counters import CounterSet

__all__ = ["Direction", "DeviceArray", "UnifiedMemory", "ExplicitDataEnvironment"]


class Direction(enum.Enum):
    """How a kernel uses an array, from the data-management viewpoint."""

    IN = "in"  # produced on the host, read by the device
    OUT = "out"  # produced on the device, read by the host afterwards
    INOUT = "inout"
    RESIDENT = "resident"  # device-only once staged (the Green tables)
    SCRATCH = "scratch"  # device-only work arrays, never seen by the host


@dataclass(frozen=True)
class DeviceArray:
    """An array participating in offloaded kernels."""

    name: str
    nbytes: float
    direction: Direction = Direction.IN
    #: Persistent arrays are allocated once per run (Green tables,
    #: factorisations); non-persistent ones are allocated and freed every
    #: ``pflux_`` call (Fortran work arrays) — the allocator-policy story.
    persistent: bool = True

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise MemoryModelError(f"array {self.name!r} with nbytes={self.nbytes}")


def _transfer_seconds(arch: GPUArchitecture, nbytes: float) -> float:
    return nbytes / (arch.host_link_gbs * 1e9)


class UnifiedMemory:
    """Page-migrating unified memory over an allocator model."""

    def __init__(
        self,
        arch: GPUArchitecture,
        allocator: AllocatorModel,
        clock: Clock,
        counters: CounterSet,
    ) -> None:
        if not arch.unified_memory:
            raise MemoryModelError(f"{arch.name} offers no unified memory")
        self.arch = arch
        self.allocator = allocator
        self.clock = clock
        self.counters = counters
        #: Device-resident allocation identities.
        self._resident: set[tuple[str, int]] = set()
        #: Generations that have faulted onto the device before.  Fault
        #: (mapping/registration) cost is paid once per generation; later
        #: re-migrations of the same pages are pure transfers.  This is
        #: exactly why the Cray trim-on-free allocator hurts: every call
        #: produces never-before-seen pages.
        self._ever_faulted: set[tuple[str, int]] = set()

    def _fault_pages(self, alloc: Allocation) -> int:
        """Fault batches charged for one array touch: the driver coalesces
        contiguous faults, so the count is capped per array."""
        pages = max(1, math.ceil(alloc.nbytes / self.arch.page_bytes))
        return min(pages, self.arch.fault_batch_pages)

    def _migrate(self, alloc: Allocation, *, to_device: bool, transfer: bool = True) -> None:
        seconds = 0.0
        if alloc.key not in self._ever_faulted:
            pages = self._fault_pages(alloc)
            seconds += pages * self.arch.page_fault_us * 1e-6
            self.counters.page_faults += pages
            self._ever_faulted.add(alloc.key)
        if transfer:
            seconds += _transfer_seconds(self.arch, alloc.nbytes)
            if to_device:
                self.counters.h2d_bytes += alloc.nbytes
            else:
                self.counters.d2h_bytes += alloc.nbytes
        self.clock.advance(seconds)
        self.counters.migrations += 1

    def device_touch(self, allocations: list[tuple[Allocation, Direction]]) -> None:
        """Fault in whatever the device is about to access."""
        for alloc, direction in allocations:
            if alloc.key in self._resident:
                continue
            if direction in (Direction.OUT, Direction.SCRATCH):
                # Populated on the device: no host->device transfer, but
                # fresh pages still fault (allocation + mapping cost) — the
                # Figure 4 mechanism for the per-call work arrays.
                self._migrate(alloc, to_device=True, transfer=False)
            else:
                self._migrate(alloc, to_device=True)
            self._resident.add(alloc.key)

    def host_touch(self, allocations: list[tuple[Allocation, Direction]]) -> None:
        """The host reads results / rewrites inputs after kernels ran."""
        for alloc, direction in allocations:
            if direction in (Direction.RESIDENT, Direction.SCRATCH):
                continue  # the host never touches these between calls
            if alloc.key not in self._resident:
                continue
            if direction in (Direction.OUT, Direction.INOUT):
                self._migrate(alloc, to_device=False)
            # Host write invalidates device residency either way; the next
            # device access re-migrates.
            self._resident.discard(alloc.key)

    def is_resident(self, alloc: Allocation) -> bool:
        return alloc.key in self._resident


class ExplicitDataEnvironment:
    """``target data`` semantics for devices without unified memory."""

    def __init__(self, arch: GPUArchitecture, clock: Clock, counters: CounterSet) -> None:
        self.arch = arch
        self.clock = clock
        self.counters = counters
        self._staged: set[str] = set()

    def enter(self, arrays: list[DeviceArray]) -> None:
        """Region entry: copy ``map(to:)``-style arrays to the device."""
        for arr in arrays:
            if arr.name in self._staged:
                raise MapError(f"array {arr.name!r} already mapped")
            if arr.direction in (Direction.IN, Direction.INOUT, Direction.RESIDENT):
                self.clock.advance(_transfer_seconds(self.arch, arr.nbytes))
                self.counters.h2d_bytes += arr.nbytes
            self._staged.add(arr.name)

    def exit(self, arrays: list[DeviceArray]) -> None:
        """Region exit: copy ``map(from:)``-style arrays back."""
        for arr in arrays:
            if arr.name not in self._staged:
                raise MapError(f"array {arr.name!r} not mapped")
            if arr.direction in (Direction.OUT, Direction.INOUT):
                self.clock.advance(_transfer_seconds(self.arch, arr.nbytes))
                self.counters.d2h_bytes += arr.nbytes
            self._staged.discard(arr.name)

    def implicit_kernel_maps(self, arrays: list[DeviceArray]) -> None:
        """What happens *without* a data region: every kernel copies its
        unstaged operands in and its outputs out (Section 6.2's "continue
        copies of data from host to GPUs and vice-versa")."""
        for arr in arrays:
            if arr.name in self._staged:
                continue
            if arr.direction in (Direction.IN, Direction.INOUT, Direction.RESIDENT):
                self.clock.advance(_transfer_seconds(self.arch, arr.nbytes))
                self.counters.h2d_bytes += arr.nbytes
            if arr.direction in (Direction.OUT, Direction.INOUT):
                self.clock.advance(_transfer_seconds(self.arch, arr.nbytes))
                self.counters.d2h_bytes += arr.nbytes

    def is_staged(self, name: str) -> bool:
        return name in self._staged
