"""Regenerate every *table* of the paper's evaluation (Tables 1-7).

Each benchmark times the full sweep that produces its table (the modeled
study is deterministic and cheap), prints the rendered model-vs-paper
table, and writes it under ``results/``.
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.report import (
    table1_report,
    table2_report,
    table4_5_report,
    table6_report,
    table7_report,
)


def test_table1_cpu_fit_times(benchmark, study):
    table = benchmark(lambda: table1_report(study))
    write_artifact("table1", table.render())


def test_table2_cpu_pflux_times(benchmark, study):
    table = benchmark(lambda: table2_report(study))
    write_artifact("table2", table.render())


def test_table4_table5_directive_census(benchmark):
    t4, t5 = benchmark(table4_5_report)
    write_artifact("table4", t4.render())
    write_artifact("table5", t5.render())


def test_table6_openacc(benchmark, study):
    table = benchmark(lambda: table6_report(study))
    write_artifact("table6", table.render())


def test_table7_openmp(benchmark, study):
    table = benchmark(lambda: table7_report(study))
    write_artifact("table7", table.render())
