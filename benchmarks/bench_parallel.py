"""Wall-clock scaling of the multi-process reconstruction fleet.

The headline contrast: one ``BatchFitEngine`` reconstructing a 16-slice
sequence serially versus a :class:`~repro.parallel.engine.ParallelFitEngine`
sharding the same ``batch_size`` groups across 4 worker processes that
map one shared-memory table arena.  The acceptance bar (ISSUE 4, on
CI-class hardware): **>= 2x wall-clock speedup at 4 workers, 65^2 grid,
16 slices** — with bit-identical merged results.

The speedup assertion is gated on ``os.cpu_count() >= 4``: on fewer
cores the workers time-share and the scheduler overhead dominates, so
the run still writes its artifact (and still checks equality) but the
scaling bar is skipped rather than reporting noise as regression.
Results land in ``results/parallel_scaling.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.parallel import ParallelFitEngine, SchedulerConfig

from benchmarks.conftest import write_artifact

N_SLICES = 16
BATCH_SIZE = 4


@pytest.fixture(scope="module")
def fleet_slices(shot65):
    return synthetic_slice_sequence(shot65, N_SLICES, seed=3)


def test_fleet_vs_serial_65(shot65, fleet_slices):
    """The acceptance run: >= 2x wall-clock at 4 workers, identical psi."""
    serial = BatchFitEngine(
        shot65.machine, shot65.diagnostics, shot65.grid, batch_size=BATCH_SIZE
    )
    serial.fit_many(fleet_slices)  # warm tables, workspaces, factorisation
    t0 = time.perf_counter()
    serial_result = serial.fit_many(fleet_slices)
    t_serial = time.perf_counter() - t0

    sweep: dict[str, dict] = {}
    for workers in (1, 2, 4):
        with ParallelFitEngine(
            shot65.machine,
            shot65.diagnostics,
            shot65.grid,
            batch_size=BATCH_SIZE,
            workers=workers,
            config=SchedulerConfig(workers=workers, timeout_seconds=600.0),
        ) as engine:
            engine.fit_many(fleet_slices)  # warm every worker's engine
            t0 = time.perf_counter()
            result = engine.fit_many(fleet_slices)
            t_wall = time.perf_counter() - t0
            counters = engine.scheduler.counters
            sweep[str(workers)] = {
                "wall_seconds": t_wall,
                "slices_per_second": N_SLICES / t_wall,
                "speedup_vs_serial": t_serial / t_wall,
                "worker_restarts": counters.worker_restarts,
                "arena_bytes": engine.arena.nbytes,
            }
        if workers == 4:
            # The merge must be invisible: bit-identical to the serial run.
            assert all(
                np.array_equal(p.psi, s.psi)
                for p, s in zip(result.results, serial_result.results)
            )
            assert [r.chi2 for r in result.results] == [
                s.chi2 for s in serial_result.results
            ]

    artifact = {
        "grid": "65x65",
        "n_slices": N_SLICES,
        "batch_size": BATCH_SIZE,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": t_serial,
        "workers": sweep,
    }
    write_artifact("parallel_scaling", json.dumps(artifact, indent=2), suffix=".json")

    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            f"{os.cpu_count()} core(s): 4-worker scaling bar needs >= 4 cores"
        )
    assert sweep["4"]["speedup_vs_serial"] >= 2.0, artifact


def test_arena_amortises_worker_startup(shot65, fleet_slices):
    """Worker startup must be O(1) in grid size: attaching the shared
    arena replaces the O(N^3) per-process table build.  Measured as the
    pool's time-to-first-result against the parent's one-off build."""
    t0 = time.perf_counter()
    with ParallelFitEngine(
        shot65.machine,
        shot65.diagnostics,
        shot65.grid,
        batch_size=BATCH_SIZE,
        workers=2,
        config=SchedulerConfig(workers=2, timeout_seconds=600.0),
    ) as engine:
        t_construct = time.perf_counter() - t0
        engine.fit_many(fleet_slices[:BATCH_SIZE])
        # A second engine on the same grid shares the arena: no rebuild.
        t1 = time.perf_counter()
        with ParallelFitEngine(
            shot65.machine,
            shot65.diagnostics,
            shot65.grid,
            batch_size=BATCH_SIZE,
            workers=2,
            config=SchedulerConfig(workers=2, timeout_seconds=600.0),
        ) as second:
            t_second = time.perf_counter() - t1
            assert second.arena is engine.arena
    # The shared-arena acquisition must be far cheaper than the first
    # build (which pays the table construction + copy exactly once).
    assert t_second < t_construct
    write_artifact(
        "parallel_startup",
        json.dumps(
            {
                "first_engine_seconds": t_construct,
                "second_engine_seconds": t_second,
                "arena_bytes": engine.arena.nbytes,
            },
            indent=2,
        ),
        suffix=".json",
    )
