"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one mechanism of the model and shows the consequence,
demonstrating that the reproduced results follow from the claimed causes
rather than from bulk calibration:

* **A1 — Intel target-data regions**: remove the explicit data regions
  (Section 6.2's optimisation) and every kernel re-copies its operands —
  including the O(N^3) Green table — roughly doubling large-grid run
  time and erasing the GPU's advantage.
* **A2 — CCE OpenACC traffic**: set the OpenACC boundary-kernel traffic
  factor to the OpenMP value (1.05x streaming instead of 3.9x); the
  Table 6 gap collapses — the AMD OpenACC problem *is* the Figure 5
  data movement.
* **A3 — kernel-launch latency**: scale the per-launch cost; the 65^2
  time moves nearly 1:1 while 513^2 barely notices ("10us of latency
  will impede acceleration of the smaller loops", Section 2).
* **A4 — allocator policy**: page-fault counters under trim-on-free vs
  arena reuse (the mechanism behind Figure 4, shown as counters rather
  than time).
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import write_artifact
from repro.calibration import KernelClass, lowering_quality
from repro.compilers.flags import parse_flags
from repro.core.offload import PfluxOffloadModel
from repro.machines.site import frontier, perlmutter, sunspot
from repro.utils.tables import Table, format_seconds


def _build(site, model="openmp", **kw):
    return site.compiler.configure(parse_flags(site.flags(model)), site.env, site.gpu, **kw)


def test_ablation_intel_target_data(benchmark):
    site = sunspot()

    def run():
        rows = []
        for n in (65, 129, 257):
            with_td = PfluxOffloadModel(n, n, _build(site, use_target_data=True))
            without = PfluxOffloadModel(n, n, _build(site, use_target_data=False))
            rows.append((n, with_td.steady_state_seconds(), without.steady_state_seconds()))
        return rows

    rows = benchmark(run)
    t = Table(
        ["grid", "with target data", "without", "penalty"],
        title="A1 — Intel PVC: explicit data regions vs implicit per-kernel maps",
    )
    for n, w, wo in rows:
        t.add_row([f"{n}x{n}", format_seconds(w), format_seconds(wo), f"{wo / w:.2f}x"])
    write_artifact("ablation_target_data", t.render())
    # The penalty grows with N (Green-table recopies are O(N^3) bytes).
    penalties = [wo / w for _, w, wo in rows]
    assert penalties[-1] > 1.8
    assert penalties == sorted(penalties)


def test_ablation_cce_acc_traffic(benchmark):
    site = frontier()
    omp_traffic = lowering_quality("cce", "openmp", "AMD", KernelClass.BOUNDARY_N3).traffic_factor

    def run():
        build = _build(site, "openacc")
        rows = []
        for n in (129, 257, 513):
            model = PfluxOffloadModel(n, n, build)
            base = model.steady_state_seconds()
            # Counterfactual: OpenACC moving only OpenMP's data volume.
            for name in ("boundary_lr", "boundary_tb"):
                plan = model.plans[name]
                model.plans[name] = dataclasses.replace(plan, traffic_factor=omp_traffic)
            cf = model.steady_state_seconds()
            rows.append((n, base, cf))
        return rows

    rows = benchmark(run)
    t = Table(
        ["grid", "as measured (3.9x traffic)", "counterfactual (OpenMP traffic)"],
        title="A2 — CCE OpenACC boundary kernels: the gap IS the data movement",
    )
    for n, base, cf in rows:
        t.add_row([f"{n}x{n}", format_seconds(base), format_seconds(cf)])
    write_artifact("ablation_traffic", t.render())
    # Removing the excess traffic recovers most of the 513^2 gap.
    assert rows[-1][1] / rows[-1][2] > 2.5


def test_ablation_launch_latency(benchmark):
    site = perlmutter()

    def run():
        rows = []
        for scale in (0.5, 1.0, 4.0):
            gpu = dataclasses.replace(
                site.gpu, kernel_launch_us=site.gpu.kernel_launch_us * scale
            )
            site2 = dataclasses.replace(site, gpu=gpu, compiler=site.compiler)
            t65 = PfluxOffloadModel(65, 65, _build(site2)).steady_state_seconds()
            t513 = PfluxOffloadModel(513, 513, _build(site2)).steady_state_seconds()
            rows.append((scale, t65, t513))
        return rows

    rows = benchmark(run)
    t = Table(
        ["launch latency", "pflux_ 65x65", "pflux_ 513x513"],
        title="A3 — launch latency dominates the small grids only",
    )
    for scale, t65, t513 in rows:
        t.add_row([f"{scale:.1f}x", format_seconds(t65), format_seconds(t513)])
    write_artifact("ablation_launch_latency", t.render())
    # 8x more latency ~ 4-8x slower at 65^2, <1.5x at 513^2.
    assert rows[-1][1] / rows[0][1] > 3.0
    assert rows[-1][2] / rows[0][2] < 1.5


def test_ablation_allocator_counters(benchmark):
    def run():
        out = {}
        for system_alloc in (True, False):
            site = frontier(system_alloc=system_alloc)
            model = PfluxOffloadModel(65, 65, _build(site))
            for _ in range(4):
                model.invoke()
            out[system_alloc] = model.executor.counters.page_faults
        return out

    faults = benchmark(run)
    t = Table(
        ["allocator", "page faults after 4 pflux_ calls"],
        title="A4 — Figure 4's mechanism: trim-on-free refaults every call",
    )
    t.add_row(["-hsystem_alloc (arena reuse)", faults[True]])
    t.add_row(["Cray default (trim on free)", faults[False]])
    write_artifact("ablation_allocator", t.render())
    assert faults[False] > 2 * faults[True]
