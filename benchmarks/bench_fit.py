"""Real wall-clock benchmarks of the full reconstruction (fit_)."""

from __future__ import annotations

import pytest

from repro.efit.fitting import EfitSolver
from repro.profiling.regions import RegionProfiler

from benchmarks.conftest import write_artifact


@pytest.fixture(scope="module")
def solver65(shot65):
    return EfitSolver(shot65.machine, shot65.diagnostics, shot65.grid)


def test_full_fit_65(benchmark, solver65, shot65):
    """End-to-end reconstruction of one time slice at 65x65."""
    result = benchmark(solver65.fit, shot65.measurements)
    assert result.converged
    benchmark.extra_info["iterations"] = result.iterations


def test_single_fit_invocation_65(benchmark, shot65):
    """One Picard iterate (the paper's per-invocation unit of Table 1)."""
    profiler = RegionProfiler()
    solver = EfitSolver(
        shot65.machine, shot65.diagnostics, shot65.grid, profiler=profiler, max_iters=1
    )

    def one_iteration():
        return solver.fit(shot65.measurements, require_convergence=False)

    benchmark(one_iteration)


def test_fit_region_breakdown_65(solver65, shot65):
    """Measured Python-side fit_ breakdown (the real-execution analog of
    Figure 1; with the BLAS pflux_ the profile differs from Fortran —
    recorded for EXPERIMENTS.md)."""
    profiler = RegionProfiler()
    solver = EfitSolver(shot65.machine, shot65.diagnostics, shot65.grid, profiler=profiler)
    solver.fit(shot65.measurements)
    rep = profiler.report()
    lines = ["Measured Python fit_ breakdown at 65x65 (vectorized pflux_):"]
    for name, pct in sorted(rep.percentages().items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:10s} {pct:5.1f}%  ({rep.calls[name]} calls)")
    write_artifact("fit_breakdown_python", "\n".join(lines))


def test_fit_with_reference_pflux_17(benchmark):
    """fit_ with the pure-loop pflux_ — the 'original code' analog; tiny
    grid because interpreted loops are ~1000x slower."""
    from repro.efit.measurements import synthetic_shot_186610

    shot = synthetic_shot_186610(17, noise=0.0, seed=2)
    solver = EfitSolver(
        shot.machine, shot.diagnostics, shot.grid, pflux_impl="reference", max_iters=1
    )
    benchmark(solver.fit, shot.measurements, require_convergence=False)


def test_scheduler_throughput(benchmark):
    """Dispatch cost of the time-slice task farm (pure scheduling)."""
    from repro.core.timeslices import schedule_slices, synthetic_slice_counts

    slices = synthetic_slice_counts(1000)
    result = benchmark(schedule_slices, slices, 64, 1e-3)
    assert result.utilisation > 0.9


def test_qprofile_tracing_65(benchmark, shot65):
    """Flux-surface tracing + q computation on a reconstructed slice."""
    from repro.efit.qprofile import QProfile

    tr = shot65.truth
    f_vac = shot65.machine.f_vacuum
    prof = benchmark(
        QProfile.compute, shot65.grid, tr.psi, tr.boundary, lambda s: f_vac
    )
    assert prof.q95 > 1.0


def test_cyclic_reduction_solver_65(benchmark):
    """The Buneman solver beside the DST/LU timings in bench_solvers."""
    import numpy as np

    from repro.efit.grid import RZGrid
    from repro.efit.solvers.cyclic import CyclicReductionSolver

    g = RZGrid(65, 65)
    solver = CyclicReductionSolver(g)
    rng = np.random.default_rng(3)
    rhs = rng.normal(size=g.shape)
    bdry = rng.normal(size=g.shape)
    benchmark(solver.solve, rhs, bdry)
