"""Benchmark fixtures.

Two kinds of benchmarks live here:

* **Paper-artifact harnesses** (``bench_paper_tables.py``,
  ``bench_paper_figures.py``) — regenerate every table and figure of the
  evaluation section (model vs paper side by side).  Each rendered
  artifact is also written to ``results/<artifact>.txt`` so the output
  survives pytest's capture; EXPERIMENTS.md is assembled from these.
* **Real wall-clock kernels** (``bench_kernels.py``, ``bench_solvers.py``,
  ``bench_fit.py``) — pytest-benchmark timings of the actual Python
  implementations, including the reference-loop vs vectorised ``pflux_``
  contrast that mirrors the paper's 3x CPU optimisation.

Set ``REPRO_BENCH_LARGE=1`` to extend the real-execution benchmarks to
257^2 (the Green tables then cost ~135 MB per grid).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.study import PortabilityStudy
from repro.machines.site import ALL_SITES

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_artifact(name: str, text: str, suffix: str = ".txt") -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}{suffix}").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def study():
    return PortabilityStudy(ALL_SITES())


@pytest.fixture(scope="session")
def large_grids_enabled():
    return os.environ.get("REPRO_BENCH_LARGE", "0") == "1"


@pytest.fixture(scope="session")
def shot65():
    from repro.efit.measurements import synthetic_shot_186610

    return synthetic_shot_186610(65)
