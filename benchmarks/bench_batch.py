"""Throughput benchmarks of the batched multi-slice engine.

The headline contrast: a serial loop of ``EfitSolver.fit`` calls versus
``BatchFitEngine.fit_many`` over the same slices at the paper's 65x65
production grid.  The batched path amortises the limiter mask, coil flux
tables and solver factorisation across slices and replaces per-slice
boundary Green sums with one GEMM — the acceptance bar is >= 2x slices/s
at B=8.  Results (slices/s vs batch size at 65^2 and 129^2) land in
``results/batch_throughput.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.efit.fitting import EfitSolver

from benchmarks.conftest import write_artifact

N_SLICES = 8


@pytest.fixture(scope="module")
def slices65(shot65):
    return synthetic_slice_sequence(shot65, N_SLICES, seed=3)


def _timed_run(engine, slices):
    engine.fit_many(slices)  # warm the workspaces and caches
    t0 = time.perf_counter()
    batch = engine.fit_many(slices)
    return time.perf_counter() - t0, batch


def test_batch_vs_serial_65(shot65, slices65):
    """The acceptance run: >= 2x slices/s at B=8 on 65^2, same psi."""
    serial = EfitSolver(shot65.machine, shot65.diagnostics, shot65.grid)
    serial.fit(slices65[0])  # warm the table cache
    t0 = time.perf_counter()
    serial_results = [serial.fit(m) for m in slices65]
    t_serial = time.perf_counter() - t0

    sweep: dict[str, dict] = {}
    for bs in (1, 2, 4, 8):
        engine = BatchFitEngine(
            shot65.machine, shot65.diagnostics, shot65.grid, batch_size=bs
        )
        t_batch, batch = _timed_run(engine, slices65)
        sweep[str(bs)] = {
            "slices_per_second": batch.stats.slices_per_second,
            "wall_seconds": t_batch,
            "speedup_vs_serial": t_serial / t_batch,
            "latency_p50_ms": 1e3 * batch.stats.latency_p50,
            "latency_p95_ms": 1e3 * batch.stats.latency_p95,
        }
        if bs == 8:
            max_rel = max(
                float(np.max(np.abs(s.psi - b.psi)) / np.max(np.abs(s.psi)))
                for s, b in zip(serial_results, batch.results)
            )
            counters = engine.workspace_counters()
            sweep[str(bs)]["max_rel_psi_err"] = max_rel
            # The three acceptance criteria of the batch engine:
            assert t_serial / t_batch >= 2.0, sweep
            assert max_rel <= 1e-10
            assert counters.reuses > 0

    artifact = {
        "grid": "65x65",
        "n_slices": N_SLICES,
        "serial_wall_seconds": t_serial,
        "serial_slices_per_second": N_SLICES / t_serial,
        "batch": sweep,
    }
    write_artifact("batch_throughput", json.dumps(artifact, indent=2), suffix=".json")


def test_batch_scaling_129():
    """Batch-size scaling at 129^2 (fewer slices: each fit is ~10x 65^2).

    No serial baseline here — B=1 through the engine is the reference, so
    the numbers isolate what batching itself buys at a larger grid."""
    from repro.efit.measurements import synthetic_shot_186610

    shot = synthetic_shot_186610(129)
    slices = synthetic_slice_sequence(shot, 4, seed=5)
    sweep: dict[str, dict] = {}
    for bs in (1, 4):
        engine = BatchFitEngine(
            shot.machine, shot.diagnostics, shot.grid, batch_size=bs
        )
        t_batch, batch = _timed_run(engine, slices)
        sweep[str(bs)] = {
            "slices_per_second": batch.stats.slices_per_second,
            "wall_seconds": t_batch,
        }
    assert sweep["4"]["slices_per_second"] >= sweep["1"]["slices_per_second"] * 0.9
    write_artifact(
        "batch_throughput_129",
        json.dumps({"grid": "129x129", "n_slices": 4, "batch": sweep}, indent=2),
        suffix=".json",
    )


def test_certified_kernel_is_allocation_free_65(shot65, slices65):
    """Static certification cross-check (docs/ANALYSIS.md).

    The portability linter certifies ``BatchFitEngine._fit_batch`` as
    allocation-free; the runtime counters must agree — zero workspace
    allocations across steady-state batches after warm-up."""
    from repro.analysis.engine import analyze_repo

    report = analyze_repo()
    assert "repro.batch.engine::BatchFitEngine._fit_batch" in (
        report.certified_allocation_free
    )

    engine = BatchFitEngine(
        shot65.machine, shot65.diagnostics, shot65.grid, batch_size=8
    )
    engine.fit_many(slices65)  # warm-up allocates every workspace buffer
    warm = engine.workspace_counters().snapshot()
    engine.fit_many(slices65)
    engine.fit_many(slices65)
    steady = engine.workspace_counters()
    assert steady.allocations_since(warm) == 0, (
        "linter-certified _fit_batch allocated in steady state"
    )
    assert steady.reuses > warm.reuses


def test_engine_fit_many_65(benchmark, shot65, slices65):
    """pytest-benchmark timing of the steady-state batched run."""
    engine = BatchFitEngine(
        shot65.machine, shot65.diagnostics, shot65.grid, batch_size=8
    )
    engine.fit_many(slices65)  # warm-up
    result = benchmark(engine.fit_many, slices65)
    benchmark.extra_info["slices_per_second"] = result.stats.slices_per_second
    assert result.stats.n_converged == N_SLICES
