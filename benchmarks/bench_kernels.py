"""Real wall-clock benchmarks of the pflux_ boundary kernels.

The reference kernel is the paper's "original code" analog (interpreted
loops); the vectorised kernel is the "optimized" analog (BLAS
contractions).  Their measured gap is this reproduction's real-machine
counterpart of the paper's CPU-side optimisation story.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.pflux import boundary_flux_reference, boundary_flux_vectorized
from repro.efit.tables import build_boundary_tables, cached_boundary_tables


@pytest.fixture(scope="module")
def case33():
    g = RZGrid(33, 33)
    t = cached_boundary_tables(g)
    rng = np.random.default_rng(1)
    return g, t, rng.normal(size=g.shape)


@pytest.fixture(scope="module")
def case65():
    g = RZGrid(65, 65)
    t = cached_boundary_tables(g)
    rng = np.random.default_rng(1)
    return g, t, rng.normal(size=g.shape)


@pytest.fixture(scope="module")
def case129():
    g = RZGrid(129, 129)
    t = cached_boundary_tables(g)
    rng = np.random.default_rng(1)
    return g, t, rng.normal(size=g.shape)


def test_boundary_reference_loops_33(benchmark, case33):
    """The pure-loop translation of the paper's Figure 2/3 kernel."""
    g, t, pcurr = case33
    flat = g.flatten(pcurr)
    view = t.fortran_view()
    benchmark(boundary_flux_reference, view, flat, g.nw, g.nh)


def test_boundary_vectorized_33(benchmark, case33):
    g, t, pcurr = case33
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_boundary_vectorized_65(benchmark, case65):
    g, t, pcurr = case65
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_boundary_vectorized_129(benchmark, case129):
    g, t, pcurr = case129
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_boundary_vectorized_257(benchmark, large_grids_enabled):
    if not large_grids_enabled:
        pytest.skip("set REPRO_BENCH_LARGE=1 for 257^2 real execution")
    g = RZGrid(257, 257)
    t = cached_boundary_tables(g)
    pcurr = np.random.default_rng(1).normal(size=g.shape)
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_green_table_build_65(benchmark):
    g = RZGrid(65, 65)
    benchmark(build_boundary_tables, g)


def test_python_loop_vs_blas_speedup(case33):
    """Record (not just time) the reference->vectorized speedup: it should
    be large, mirroring why the paper's optimised/offloaded builds win."""
    import time

    g, t, pcurr = case33
    flat = g.flatten(pcurr)
    view = t.fortran_view()
    t0 = time.perf_counter()
    ref = boundary_flux_reference(view, flat, g.nw, g.nh)
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(10):
        vec = boundary_flux_vectorized(t, pcurr)
    t_vec = (time.perf_counter() - t0) / 10
    assert np.allclose(g.unflatten(ref), vec)
    assert t_ref / t_vec > 10.0
