"""Real wall-clock benchmarks of the pflux_ boundary kernels.

The reference kernel is the paper's "original code" analog (interpreted
loops); the vectorised kernel is the "optimized" analog (BLAS
contractions).  Their measured gap is this reproduction's real-machine
counterpart of the paper's CPU-side optimisation story.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.pflux import boundary_flux_reference, boundary_flux_vectorized
from repro.efit.tables import build_boundary_tables, cached_boundary_tables


@pytest.fixture(scope="module")
def case33():
    g = RZGrid(33, 33)
    t = cached_boundary_tables(g)
    rng = np.random.default_rng(1)
    return g, t, rng.normal(size=g.shape)


@pytest.fixture(scope="module")
def case65():
    g = RZGrid(65, 65)
    t = cached_boundary_tables(g)
    rng = np.random.default_rng(1)
    return g, t, rng.normal(size=g.shape)


@pytest.fixture(scope="module")
def case129():
    g = RZGrid(129, 129)
    t = cached_boundary_tables(g)
    rng = np.random.default_rng(1)
    return g, t, rng.normal(size=g.shape)


def test_boundary_reference_loops_33(benchmark, case33):
    """The pure-loop translation of the paper's Figure 2/3 kernel."""
    g, t, pcurr = case33
    flat = g.flatten(pcurr)
    view = t.fortran_view()
    benchmark(boundary_flux_reference, view, flat, g.nw, g.nh)


def test_boundary_vectorized_33(benchmark, case33):
    g, t, pcurr = case33
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_boundary_vectorized_65(benchmark, case65):
    g, t, pcurr = case65
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_boundary_vectorized_129(benchmark, case129):
    g, t, pcurr = case129
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_boundary_vectorized_257(benchmark, large_grids_enabled):
    if not large_grids_enabled:
        pytest.skip("set REPRO_BENCH_LARGE=1 for 257^2 real execution")
    g = RZGrid(257, 257)
    t = cached_boundary_tables(g)
    pcurr = np.random.default_rng(1).normal(size=g.shape)
    benchmark(boundary_flux_vectorized, t, pcurr)


def test_edge_operator_lowrank_65(benchmark, case65):
    """The truncated-SVD structured apply at the default grid size."""
    from repro.efit.operators import cached_edge_operator

    g, t, pcurr = case65
    op = cached_edge_operator(t, "lowrank")
    flat = pcurr.reshape(g.size)
    benchmark(op.apply, flat)


def test_edge_operator_toeplitz_65(benchmark, case65):
    """The circulant-FFT structured apply at the default grid size."""
    from repro.efit.operators import cached_edge_operator

    g, t, pcurr = case65
    op = cached_edge_operator(t, "toeplitz")
    flat = pcurr.reshape(g.size)
    benchmark(op.apply, flat)


def test_edge_operator_lowrank_257(benchmark, large_grids_enabled):
    if not large_grids_enabled:
        pytest.skip("set REPRO_BENCH_LARGE=1 for 257^2 real execution")
    from repro.efit.operators import cached_edge_operator

    g = RZGrid(257, 257)
    t = cached_boundary_tables(g)
    op = cached_edge_operator(t, "lowrank")
    flat = np.random.default_rng(1).normal(size=g.size)
    benchmark(op.apply, flat)


def test_structured_vs_dense_speedup_257(large_grids_enabled):
    """The PR's acceptance criterion, measured for real: at 257^2 the
    structured low-rank apply must beat the dense GEMM by >=5x, at
    <=1e-10 relative error (fp64) and <=1e-5 (fp32 + refinement)."""
    if not large_grids_enabled:
        pytest.skip("set REPRO_BENCH_LARGE=1 for 257^2 real execution")
    import time

    from repro.efit.operators import build_edge_operator

    g = RZGrid(257, 257)
    t = cached_boundary_tables(g)
    dense = build_edge_operator(t, "dense")
    flat = np.random.default_rng(1).normal(size=g.size)

    def median_time(fn, repeats=7):
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(flat)
            samples.append(time.perf_counter() - t0)
        return sorted(samples)[repeats // 2]

    ref = dense.apply(flat)
    scale = np.max(np.abs(ref))
    t_dense = median_time(dense.apply)

    lowrank = build_edge_operator(t, "lowrank")
    t_lowrank = median_time(lowrank.apply)
    rel = np.max(np.abs(lowrank.apply(flat) - ref)) / scale
    assert rel <= 1e-10, f"lowrank rel error {rel:.3e} exceeds 1e-10"
    assert t_dense / t_lowrank >= 5.0, (
        f"lowrank apply only x{t_dense / t_lowrank:.2f} over dense "
        f"({t_lowrank * 1e3:.2f} ms vs {t_dense * 1e3:.2f} ms)"
    )

    lowrank32 = build_edge_operator(t, "lowrank-fp32")
    rel32 = np.max(np.abs(lowrank32.apply(flat) - ref)) / scale
    assert rel32 <= 1e-5, f"lowrank-fp32 rel error {rel32:.3e} exceeds 1e-5"


def test_green_table_build_65(benchmark):
    g = RZGrid(65, 65)
    benchmark(build_boundary_tables, g)


def test_python_loop_vs_blas_speedup(case33):
    """Record (not just time) the reference->vectorized speedup: it should
    be large, mirroring why the paper's optimised/offloaded builds win."""
    import time

    g, t, pcurr = case33
    flat = g.flatten(pcurr)
    view = t.fortran_view()
    t0 = time.perf_counter()
    ref = boundary_flux_reference(view, flat, g.nw, g.nh)
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(10):
        vec = boundary_flux_vectorized(t, pcurr)
    t_vec = (time.perf_counter() - t0) / 10
    assert np.allclose(g.unflatten(ref), vec)
    assert t_ref / t_vec > 10.0
