"""Regenerate every *figure* of the paper's evaluation (Figures 1, 4-7).

(Figures 2 and 3 are code listings — reproduced by the directive objects
themselves; see ``bench_listings`` below, which renders them too.)
"""

from __future__ import annotations

from benchmarks.conftest import write_artifact
from repro.core.offload import build_pflux_registry
from repro.core.report import (
    fig1_report,
    fig4_report,
    fig5_report,
    fig6_report,
    fig7_report,
)


def test_fig1_cpu_breakdown(benchmark, study):
    table = benchmark(lambda: fig1_report(study))
    write_artifact("fig1", table.render())


def test_fig4_system_alloc(benchmark):
    table = benchmark(fig4_report)
    write_artifact("fig4", table.render())


def test_fig5_data_movement(benchmark, study):
    table = benchmark(lambda: fig5_report(study))
    write_artifact("fig5", table.render())


def test_fig6_gpu_breakdown(benchmark, study):
    table = benchmark(lambda: fig6_report(study))
    write_artifact("fig6", table.render())


def test_fig7_speedup_summary(benchmark, study):
    table = benchmark(lambda: fig7_report(study))
    write_artifact("fig7", table.render())


def test_fig2_fig3_listings(benchmark):
    """Figures 2/3: the directive annotations of the O(N^3) kernel, as
    rendered by our pragma objects."""

    def render():
        reg = build_pflux_registry(513)
        k = reg.get("boundary_lr")
        lines = ["Figure 2 - OpenACC annotation of the O(N^3) boundary loop:"]
        lines += ["  " + d.to_pragma() for d in k.acc_directives]
        lines += ["Figure 3 - OpenMP annotation of the same loop:"]
        lines += ["  " + d.to_pragma() for d in k.omp_directives]
        return "\n".join(lines)

    write_artifact("fig2_fig3", benchmark(render))


def test_roofline_placement(benchmark, study):
    """Related-work methodology (Mehta et al.): roofline placement of
    every offloaded kernel on each device."""
    from repro.core.report import roofline_report

    def render():
        parts = []
        for site, model in (
            ("perlmutter", "openmp"),
            ("frontier", "openmp"),
            ("frontier", "openacc"),
            ("sunspot", "openmp"),
        ):
            parts.append(roofline_report(study, site, model).render())
        return "\n\n".join(parts)

    write_artifact("roofline", benchmark(render))


def test_extension_full_offload(benchmark, study):
    """The paper's future work projected with the same cost model."""
    from repro.core.report import extension_report

    table = benchmark(lambda: extension_report(study))
    write_artifact("extension_full_offload", table.render())
