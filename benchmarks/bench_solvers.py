"""Real wall-clock benchmarks of the interior Grad-Shafranov solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.solvers import make_solver


@pytest.fixture(scope="module", params=[65, 129])
def problem(request):
    n = request.param
    g = RZGrid(n, n)
    rng = np.random.default_rng(2)
    return g, rng.normal(size=g.shape), rng.normal(size=g.shape)


@pytest.fixture(scope="module", params=["direct", "dst", "cg"])
def solver_name(request):
    return request.param


def test_interior_solve(benchmark, problem, solver_name):
    g, rhs, bdry = problem
    solver = make_solver(solver_name, g)  # factorisation amortised
    benchmark(solver.solve, rhs, bdry)
    benchmark.extra_info["grid"] = f"{g.nw}x{g.nh}"


def test_factorisation_direct_129(benchmark):
    g = RZGrid(129, 129)
    benchmark(make_solver, "direct", g)


def test_factorisation_dst_129(benchmark):
    g = RZGrid(129, 129)
    benchmark(make_solver, "dst", g)
